// Tests for the incremental (pausable) selection state machine — the
// SelectStep/PivotStep engine of Algorithm 1.
#include "common/select.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hpp"
#include "qmax/entry.hpp"

namespace {

using qmax::Entry;
using qmax::ValueOrder;
using qmax::common::IncrementalSelect;
using qmax::common::Xoshiro256;
using Cmp = ValueOrder<std::uint64_t, double>;

std::vector<Entry> make_entries(const std::vector<double>& vals) {
  std::vector<Entry> v;
  v.reserve(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    v.push_back(Entry{i, vals[i]});
  }
  return v;
}

// Checks the std::nth_element post-condition at k under cmp.
void expect_selected(const std::vector<Entry>& data, std::size_t k, Cmp cmp,
                     double expected_kth) {
  ASSERT_LT(k, data.size());
  EXPECT_DOUBLE_EQ(data[k].val, expected_kth);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_FALSE(cmp(data[k], data[i]))
        << "prefix element at " << i << " compares after the nth";
  }
  for (std::size_t i = k + 1; i < data.size(); ++i) {
    EXPECT_FALSE(cmp(data[i], data[k]))
        << "suffix element at " << i << " compares before the nth";
  }
}

double oracle_kth(std::vector<double> vals, std::size_t k, bool descending) {
  if (descending) {
    std::sort(vals.begin(), vals.end(), std::greater<>());
  } else {
    std::sort(vals.begin(), vals.end());
  }
  return vals[k];
}

void run_to_completion(IncrementalSelect<Entry, Cmp>& sel,
                       std::uint64_t budget) {
  int guard = 1 << 22;
  while (!sel.step(budget)) {
    ASSERT_GT(--guard, 0) << "selection did not terminate";
  }
}

TEST(IncrementalSelect, SmallArrayFullySorted) {
  auto data = make_entries({5, 1, 4, 2, 3});
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), 2, Cmp{});
  run_to_completion(sel, 4);
  expect_selected(data, 2, Cmp{}, 3.0);
}

TEST(IncrementalSelect, SingleElement) {
  auto data = make_entries({42});
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), 1, 0, Cmp{});
  run_to_completion(sel, 1);
  EXPECT_DOUBLE_EQ(sel.nth().val, 42.0);
}

TEST(IncrementalSelect, AllEqualValues) {
  std::vector<double> vals(1000, 7.0);
  auto data = make_entries(vals);
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), 500, Cmp{});
  run_to_completion(sel, 8);
  expect_selected(data, 500, Cmp{}, 7.0);
}

TEST(IncrementalSelect, AscendingInput) {
  std::vector<double> vals(2000);
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = double(i);
  auto data = make_entries(vals);
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), 123, Cmp{});
  run_to_completion(sel, 16);
  expect_selected(data, 123, Cmp{}, 123.0);
}

TEST(IncrementalSelect, DescendingInputDescendingOrder) {
  std::vector<double> vals(2000);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = double(vals.size() - i);
  }
  auto data = make_entries(vals);
  const Cmp desc{.descending = true};
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), 99, desc);
  run_to_completion(sel, 16);
  expect_selected(data, 99, desc, oracle_kth(vals, 99, /*descending=*/true));
}

TEST(IncrementalSelect, ProgressesWithBudgetOne) {
  auto data = make_entries({9, 3, 7, 1, 8, 2, 6, 4, 5, 0,
                            19, 13, 17, 11, 18, 12, 16, 14, 15, 10,
                            29, 23, 27, 21, 28, 22, 26, 24, 25, 20});
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), 15, Cmp{});
  run_to_completion(sel, 1);
  EXPECT_DOUBLE_EQ(sel.nth().val, 15.0);
}

TEST(IncrementalSelect, FallbackKeepsTotalOpsLinear) {
  // Even if quickselect degenerates, the std::nth_element fallback bounds
  // total work at (kFallbackFactor + one last budget) * n.
  Xoshiro256 rng(7);
  std::vector<double> vals(50'000);
  for (auto& v : vals) v = rng.uniform();
  auto data = make_entries(vals);
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), 25'000, Cmp{});
  run_to_completion(sel, 64);
  EXPECT_LE(sel.total_ops(),
            (IncrementalSelect<Entry, Cmp>::kFallbackFactor + 1) *
                data.size() + 64);
  expect_selected(data, 25'000, Cmp{},
                  oracle_kth(vals, 25'000, /*descending=*/false));
}

struct SelectSweepParam {
  std::size_t size;
  std::size_t k;
  std::uint64_t budget;
  bool descending;
};

class SelectSweep : public ::testing::TestWithParam<SelectSweepParam> {};

TEST_P(SelectSweep, MatchesSortOracle) {
  const auto p = GetParam();
  Xoshiro256 rng(p.size * 31 + p.k);
  std::vector<double> vals(p.size);
  for (auto& v : vals) {
    // Mix continuous values and heavy ties (packet sizes cluster).
    v = rng.uniform() < 0.3 ? double(rng.bounded(8)) : rng.uniform() * 100.0;
  }
  auto data = make_entries(vals);
  const Cmp cmp{.descending = p.descending};
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), p.k, cmp);
  run_to_completion(sel, p.budget);
  expect_selected(data, p.k, cmp, oracle_kth(vals, p.k, p.descending));

  // Every original element is still present exactly once (permutation).
  std::vector<double> now(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) now[i] = data[i].val;
  std::sort(now.begin(), now.end());
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(now, vals);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SelectSweep,
    ::testing::Values(
        SelectSweepParam{2, 0, 1, false}, SelectSweepParam{2, 1, 1, true},
        SelectSweepParam{24, 11, 3, false}, SelectSweepParam{25, 0, 3, false},
        SelectSweepParam{25, 24, 3, true}, SelectSweepParam{100, 50, 7, false},
        SelectSweepParam{1000, 10, 16, false},
        SelectSweepParam{1000, 990, 16, true},
        SelectSweepParam{4096, 2048, 33, false},
        SelectSweepParam{4097, 4000, 129, true},
        SelectSweepParam{65536, 1234, 257, false}));

TEST(IncrementalSelect, BudgetOneWithHeavyTies) {
  // The smallest possible budget forces a pause after *every* operation,
  // stressing the mid-scan resume bookkeeping, on tie-heavy input where
  // both Hoare scans stop constantly.
  Xoshiro256 rng(31);
  for (int round = 0; round < 30; ++round) {
    std::vector<double> vals(400);
    for (auto& v : vals) v = double(rng.bounded(4));  // only 4 values
    auto data = make_entries(vals);
    const std::size_t k = rng.bounded(vals.size());
    IncrementalSelect<Entry, Cmp> sel;
    sel.start(data.data(), data.size(), k, Cmp{});
    run_to_completion(sel, 1);
    expect_selected(data, k, Cmp{}, oracle_kth(vals, k, false));
  }
}

TEST(IncrementalSelect, RandomBudgetSchedule) {
  // Vary the budget per step to hit every pause point (mid-left-scan,
  // mid-right-scan, post-swap, pivot selection).
  Xoshiro256 rng(32);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> vals(2'048);
    for (auto& v : vals) {
      v = rng.uniform() < 0.4 ? double(rng.bounded(10)) : rng.uniform();
    }
    auto data = make_entries(vals);
    const std::size_t k = rng.bounded(vals.size());
    IncrementalSelect<Entry, Cmp> sel;
    sel.start(data.data(), data.size(), k, Cmp{});
    int guard = 1 << 22;
    while (!sel.step(1 + rng.bounded(37))) {
      ASSERT_GT(--guard, 0);
    }
    expect_selected(data, k, Cmp{}, oracle_kth(vals, k, false));
  }
}

TEST(IncrementalSelect, ReusableAcrossStarts) {
  IncrementalSelect<Entry, Cmp> sel;
  Xoshiro256 rng(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> vals(512);
    for (auto& v : vals) v = rng.uniform();
    auto data = make_entries(vals);
    const std::size_t k = rng.bounded(vals.size());
    sel.start(data.data(), data.size(), k, Cmp{});
    run_to_completion(sel, 13);
    EXPECT_DOUBLE_EQ(sel.nth().val, oracle_kth(vals, k, false));
  }
}

TEST(IncrementalSelect, FinishCompletesInOneCall) {
  Xoshiro256 rng(11);
  std::vector<double> vals(10'000);
  for (auto& v : vals) v = rng.uniform();
  auto data = make_entries(vals);
  IncrementalSelect<Entry, Cmp> sel;
  sel.start(data.data(), data.size(), 5000, Cmp{});
  sel.step(10);  // partial progress
  sel.finish();
  EXPECT_TRUE(sel.done());
  EXPECT_DOUBLE_EQ(sel.nth().val, oracle_kth(vals, 5000, false));
}

}  // namespace
