// Small-domain sliding-window top-q (the Section 4.3.2 List-of-Possible-
// Maxima variant): approximate-timestamp retention and slack behaviour.
#include "qmax/small_domain_window.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/random.hpp"

namespace {

using qmax::SmallDomainWindowMax;
using qmax::common::Xoshiro256;

TEST(SmallDomainWindow, RejectsBadParameters) {
  EXPECT_THROW(SmallDomainWindowMax<>(0, 100, 0.1), std::invalid_argument);
  EXPECT_THROW(SmallDomainWindowMax<>(10, 0, 0.1), std::invalid_argument);
  EXPECT_THROW(SmallDomainWindowMax<>(10, 100, 0.0), std::invalid_argument);
  EXPECT_THROW(SmallDomainWindowMax<>(10, 100, 1.5), std::invalid_argument);
  SmallDomainWindowMax<> w(10, 100, 0.1);
  EXPECT_THROW(w.add(10, 1.0), std::out_of_range);
}

TEST(SmallDomainWindow, TopQOfRecentKeys) {
  SmallDomainWindowMax<> w(/*domain=*/64, /*window=*/100, /*tau=*/0.1);
  for (std::uint64_t k = 0; k < 64; ++k) w.add(k, double(k));
  const auto top = w.query(4);
  ASSERT_EQ(top.size(), 4u);
  std::set<std::uint64_t> keys;
  for (const auto& e : top) keys.insert(e.id);
  EXPECT_EQ(keys, (std::set<std::uint64_t>{60, 61, 62, 63}));
}

TEST(SmallDomainWindow, ExpiredKeysDropOut) {
  SmallDomainWindowMax<> w(16, /*window=*/50, /*tau=*/0.2);
  w.add(7, 1e9);  // heavy key, then > W + Wτ other items
  for (int i = 0; i < 61; ++i) w.add(std::uint64_t(i % 4), 1.0);
  for (const auto& e : w.query(8)) {
    EXPECT_NE(e.id, 7u) << "expired key still reported";
  }
}

TEST(SmallDomainWindow, SlackBoundaryIsFuzzyByOneBucket) {
  // A key exactly W items back may or may not be in the window — but one
  // within W(1−τ) must be, and one older than W + Wτ must not.
  const std::uint64_t W = 100;
  SmallDomainWindowMax<> w(8, W, 0.1);
  w.add(1, 5.0);  // at t=0
  for (std::uint64_t i = 0; i < W - 15; ++i) w.add(0, 1.0);  // inside W(1−τ)
  {
    std::set<std::uint64_t> keys;
    for (const auto& e : w.query(8)) keys.insert(e.id);
    EXPECT_TRUE(keys.count(1)) << "key within W(1−τ) missing";
  }
  for (std::uint64_t i = 0; i < 30; ++i) w.add(0, 1.0);  // now > W + Wτ old
  {
    std::set<std::uint64_t> keys;
    for (const auto& e : w.query(8)) keys.insert(e.id);
    EXPECT_FALSE(keys.count(1)) << "key beyond W + Wτ still present";
  }
}

TEST(SmallDomainWindow, RefreshKeepsKeyAlive) {
  SmallDomainWindowMax<> w(4, 50, 0.2);
  for (int round = 0; round < 100; ++round) {
    w.add(2, 42.0);
    for (int i = 0; i < 10; ++i) w.add(0, 1.0);
  }
  std::set<std::uint64_t> keys;
  for (const auto& e : w.query(4)) keys.insert(e.id);
  EXPECT_TRUE(keys.count(2));
}

TEST(SmallDomainWindow, SpaceIsDomainSized) {
  SmallDomainWindowMax<> w(1'000, 1'000'000, 0.01);
  EXPECT_EQ(w.stamp_count(), 1'000u);  // O(D), independent of W and q
}

TEST(SmallDomainWindow, RandomizedAgainstBruteForce) {
  const std::uint64_t D = 32, W = 200;
  const double tau = 0.25;
  SmallDomainWindowMax<> w(D, W, tau);
  Xoshiro256 rng(9);
  std::vector<std::pair<std::uint64_t, double>> history;  // (key, val)
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t k = rng.bounded(D);
    const double v = rng.uniform();
    w.add(k, v);
    history.emplace_back(k, v);
    if (i % 331 != 0) continue;
    // Brute force: keys seen within the last W(1−τ) items MUST appear in
    // a full-domain query; keys absent for more than W(1+τ) must not.
    std::set<std::uint64_t> must, may;
    const std::size_t n = history.size();
    for (std::size_t back = 0; back < n; ++back) {
      const auto& [hk, hv] = history[n - 1 - back];
      if (back < std::size_t(W * (1 - tau))) must.insert(hk);
      if (back < std::size_t(W * (1 + tau)) + 1) may.insert(hk);
    }
    std::set<std::uint64_t> got;
    for (const auto& e : w.query(D)) got.insert(e.id);
    for (auto k2 : must) {
      EXPECT_TRUE(got.count(k2)) << "mandatory key missing at item " << i;
    }
    for (auto k2 : got) {
      EXPECT_TRUE(may.count(k2)) << "key outside W(1+τ) reported at " << i;
    }
  }
}

}  // namespace
