// SampledMaintenance differential suite: the sampled-pivot policy must
// return *exactly* the true top q — sampling is a maintenance-cost
// optimization, never an accuracy tradeoff, because an estimate outside
// the γ slack window falls back to the exact partition pass. Twin
// reservoirs (SampledQMax vs the exact AmortizedQMax) consume identical
// uniform / Zipf / tie-heavy / NaN-laced streams and must agree on the
// query value multiset at every checkpoint, with the white-box invariant
// audit green throughout. Adversarial tie streams force the slack miss
// and prove the exact fallback fires.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/random.hpp"
#include "common/zipf.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/invariants.hpp"
#include "qmax/sampled_qmax.hpp"
#include "qmax/sharded.hpp"
#include "qmax/sliding.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::SampledQMax;
using qmax::check_invariants;
using qmax::common::Xoshiro256;
using qmax::common::ZipfGenerator;

template <typename R>
std::vector<double> snapshot(const R& r) {
  std::vector<double> v;
  for (const auto& e : r.query()) v.push_back(e.val);
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

enum class StreamKind { kUniform, kZipf, kTieHeavy, kNanLaced };

std::vector<double> make_stream(StreamKind kind, std::size_t n,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  switch (kind) {
    case StreamKind::kUniform:
      for (auto& x : v) x = rng.uniform() * 1e9;
      break;
    case StreamKind::kZipf: {
      // Heavy-tailed flow sizes: many ties among the small ranks, a few
      // very large values — the pivot estimate sees clumpy mass.
      ZipfGenerator zipf(1u << 20, 1.05);
      for (auto& x : v) x = static_cast<double>(zipf(rng));
      break;
    }
    case StreamKind::kTieHeavy:
      // 16 distinct values: the pivot lands on a tie plateau almost
      // every time, exercising both accepted estimates and slack misses.
      for (auto& x : v) x = static_cast<double>(rng.bounded(16));
      break;
    case StreamKind::kNanLaced:
      for (auto& x : v) {
        const double dice = rng.uniform();
        if (dice < 0.1) {
          x = std::numeric_limits<double>::quiet_NaN();
        } else if (dice < 0.15) {
          x = qmax::kEmptyValue<double>;
        } else {
          x = rng.uniform() * 1e9;
        }
      }
      break;
  }
  return v;
}

struct SampledParam {
  std::uint64_t seed;
  std::size_t q;
  double gamma;
  std::size_t n;
  StreamKind kind;
  std::size_t sample_size;  // 0 = auto
};

class SampledDifferential : public ::testing::TestWithParam<SampledParam> {};

TEST_P(SampledDifferential, TopQMatchesExactPolicy) {
  const auto p = GetParam();
  const std::vector<double> stream = make_stream(p.kind, p.n, p.seed);

  SampledQMax<> sampled(p.q, p.gamma, p.sample_size);
  AmortizedQMax<> exact(p.q, p.gamma);

  const std::size_t checkpoint = p.n / 7 + 1;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sampled.add(i, stream[i]);
    exact.add(i, stream[i]);
    if ((i + 1) % checkpoint == 0) {
      const auto audit = check_invariants(sampled);
      ASSERT_TRUE(audit.ok()) << "at item " << i << ":\n"
                              << audit.to_string();
      ASSERT_EQ(snapshot(sampled), snapshot(exact)) << "at item " << i;
    }
  }

  const auto audit = check_invariants(sampled);
  EXPECT_TRUE(audit.ok()) << audit.to_string();
  EXPECT_EQ(snapshot(sampled), snapshot(exact));
  EXPECT_EQ(sampled.processed(), exact.processed());
  // The reservoir never holds more than q + slack items after a
  // maintenance pass, and the two policies admit under the same gate
  // until their Ψ trajectories diverge (which ties/sampling allow).
  EXPECT_LE(sampled.live_count(), sampled.capacity());
  if (sampled.sampling_enabled()) {
    // Maintenance must actually run through the sampled path; the
    // differential above proves doing so never cost accuracy.
    EXPECT_GT(sampled.sampled_passes() + sampled.exact_fallbacks(), 0u);
  } else {
    EXPECT_EQ(sampled.sampled_passes(), 0u);
  }
}

std::vector<SampledParam> sampled_grid() {
  std::vector<SampledParam> g;
  std::uint64_t seed = 7001;
  for (const StreamKind kind :
       {StreamKind::kUniform, StreamKind::kZipf, StreamKind::kTieHeavy,
        StreamKind::kNanLaced}) {
    for (const double gamma : {0.05, 0.25, 1.0}) {
      g.push_back(SampledParam{seed++, 1000, gamma, 150'000, kind, 0});
    }
    // Forced sample sizes: a tiny sample (frequent slack misses — the
    // fallback path runs constantly) and a generous one.
    g.push_back(SampledParam{seed++, 1000, 0.25, 150'000, kind, 64});
    g.push_back(SampledParam{seed++, 1000, 0.25, 150'000, kind, 4096});
  }
  // Small-q reservoirs auto-disable sampling; the policy must degrade to
  // plain Algorithm 2.
  g.push_back(SampledParam{seed++, 10, 0.1, 20'000, StreamKind::kUniform, 0});
  g.push_back(SampledParam{seed++, 1, 0.5, 5'000, StreamKind::kTieHeavy, 0});
  return g;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampledDifferential, ::testing::ValuesIn(sampled_grid()),
    [](const auto& param_info) {
      const auto& p = param_info.param;
      std::string name = "s";
      name += std::to_string(p.seed);
      name += "_q";
      name += std::to_string(p.q);
      name += "_g";
      name += std::to_string(static_cast<int>(p.gamma * 100));
      name += "_k";
      name += std::to_string(static_cast<int>(p.kind));
      name += "_m";
      name += std::to_string(p.sample_size);
      return name;
    });

// ---- Fallback behavior ------------------------------------------------

// All-ties stream: the sampled pivot is necessarily the tie value, no
// live item compares strictly above it, kept = 0 < q — the estimate
// *must* be rejected and the exact partition_top pass must complete the
// maintenance. This is the adversarial sample of the spec: sampling can
// never commit here.
TEST(SampledFallback, AllTiesForcesExactFallback) {
  SampledQMax<> r(100, 0.25, /*sample_size=*/16);  // force sampling on
  ASSERT_TRUE(r.sampling_enabled());
  for (std::size_t i = 0; i < 10'000; ++i) r.add(i, 42.0);

  EXPECT_EQ(r.sampled_passes(), 0u);
  EXPECT_EQ(r.exact_fallbacks(), 1u);  // one fill, then Ψ=42 rejects all
  EXPECT_EQ(r.threshold(), 42.0);
  EXPECT_EQ(r.live_count(), 100u);
  const auto audit = check_invariants(r);
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

// Escalating tie plateaus keep re-triggering maintenance with a pivot on
// a plateau whose kept count falls far short of q: the fallback must fire
// repeatedly, and the result must still equal the exact policy's.
TEST(SampledFallback, EscalatingTiesFallBackRepeatedly) {
  const std::size_t q = 100;
  SampledQMax<> sampled(q, 0.25, /*sample_size=*/32);
  AmortizedQMax<> exact(q, 0.25);
  std::uint64_t id = 0;
  for (int round = 1; round <= 50; ++round) {
    for (int rep = 0; rep < 200; ++rep) {
      const double v = static_cast<double>(round);
      sampled.add(id, v);
      exact.add(id, v);
      ++id;
    }
  }
  EXPECT_GT(sampled.exact_fallbacks(), 10u);
  EXPECT_EQ(snapshot(sampled), snapshot(exact));
  const auto audit = check_invariants(sampled);
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

// Auto-sizing refuses to sample when the array is too small for the
// sample to undercut the exact pass.
TEST(SampledConfig, AutoDisablesSamplingOnTinyReservoirs) {
  SampledQMax<> tiny(10, 0.1);
  EXPECT_FALSE(tiny.sampling_enabled());
  SampledQMax<> big(100'000, 0.25);
  EXPECT_TRUE(big.sampling_enabled());
  EXPECT_GE(big.sample_size(), 1u);
  // The auto size is γ-derived, not q-derived: the same γ at a larger q
  // keeps the same sample size.
  SampledQMax<> bigger(1'000'000, 0.25);
  EXPECT_EQ(big.sample_size(), bigger.sample_size());
}

// On a uniform stream with the auto sample size, nearly every
// maintenance pass should commit the estimate — the fallback exists for
// the tail, not the common case.
TEST(SampledConfig, AutoSampleMostlyCommitsOnUniformStreams) {
  SampledQMax<> r(20'000, 0.25);
  ASSERT_TRUE(r.sampling_enabled());
  Xoshiro256 rng(99);
  for (std::size_t i = 0; i < 400'000; ++i) r.add(i, rng.uniform());
  const std::uint64_t total = r.sampled_passes() + r.exact_fallbacks();
  ASSERT_GT(total, 10u);
  EXPECT_GE(r.sampled_passes() * 10, total * 9)
      << "sampled=" << r.sampled_passes()
      << " fallbacks=" << r.exact_fallbacks();
}

// Eviction-callback conservation: every admitted item is either live or
// was reported exactly once to the eviction callback (the *sequence*
// differs from the exact policy by design — the pivot pass evicts in
// array order — but no item may be lost or double-reported).
TEST(SampledConfig, EvictionCallbackConservation) {
  SampledQMax<> r(500, 0.25);
  std::uint64_t evicted = 0;
  r.set_evict_callback([&](const qmax::Entry&) { ++evicted; });
  Xoshiro256 rng(7);
  for (std::size_t i = 0; i < 200'000; ++i) r.add(i, rng.uniform());
  EXPECT_EQ(evicted + r.live_count(), r.admitted());
}

// reset() must behave like a freshly constructed instance, including the
// deterministic sampling stream.
TEST(SampledConfig, ResetEqualsFresh) {
  const std::size_t q = 300;
  SampledQMax<> reused(q, 0.25);
  Xoshiro256 warm(13);
  for (std::size_t i = 0; i < 50'000; ++i) reused.add(i, warm.uniform());
  reused.reset();

  SampledQMax<> fresh(q, 0.25);
  Xoshiro256 rng1(17), rng2(17);
  for (std::size_t i = 0; i < 80'000; ++i) {
    reused.add(i, rng1.uniform());
    fresh.add(i, rng2.uniform());
  }
  EXPECT_EQ(reused.threshold(), fresh.threshold());
  EXPECT_EQ(reused.sampled_passes(), fresh.sampled_passes());
  EXPECT_EQ(reused.exact_fallbacks(), fresh.exact_fallbacks());
  EXPECT_EQ(snapshot(reused), snapshot(fresh));
}

// ---- Composition through the variant layers ---------------------------

// The batched ingestion path must agree with scalar adds on the sampled
// policy exactly as it does on the others.
TEST(SampledComposition, BatchPathMatchesScalar) {
  const std::size_t q = 1000;
  SampledQMax<> scalar(q, 0.25);
  SampledQMax<> batched(q, 0.25);
  const auto stream = make_stream(StreamKind::kUniform, 300'000, 4242);
  std::vector<std::uint64_t> ids(stream.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;

  for (std::size_t i = 0; i < stream.size(); ++i) scalar.add(i, stream[i]);
  for (std::size_t i = 0; i < stream.size(); i += 64) {
    const std::size_t m = std::min<std::size_t>(64, stream.size() - i);
    batched.add_batch(ids.data() + i, stream.data() + i, m);
  }
  EXPECT_EQ(scalar.threshold(), batched.threshold());
  EXPECT_EQ(scalar.admitted(), batched.admitted());
  EXPECT_EQ(snapshot(scalar), snapshot(batched));
}

TEST(SampledComposition, ShardedSampledMatchesExactReference) {
  const std::size_t q = 500;
  qmax::ShardedQMax<SampledQMax<>> sharded(
      4, q, SampledQMax<>::Options{.gamma = 0.25});
  AmortizedQMax<> reference(q, 0.25);
  const auto stream = make_stream(StreamKind::kZipf, 200'000, 555);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sharded.add(i % 4, i, stream[i]);
    reference.add(i, stream[i]);
  }
  std::vector<double> merged;
  for (const auto& e : sharded.query()) merged.push_back(e.val);
  std::sort(merged.begin(), merged.end(), std::greater<>());
  EXPECT_EQ(merged, snapshot(reference));
}

TEST(SampledComposition, SlackWindowOverSampledCores) {
  const std::size_t q = 64;
  qmax::SlackQMax<SampledQMax<>> sw(
      1024, 0.25, [&] { return SampledQMax<>(q, 0.5); });
  qmax::SlackQMax<AmortizedQMax<>> ref(
      1024, 0.25, [&] { return AmortizedQMax<>(q, 0.5); });
  Xoshiro256 rng(31);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const double v = rng.uniform() * 1e6;
    sw.add(i, v);
    ref.add(i, v);
  }
  auto vals = [](auto entries, std::size_t q_) {
    std::vector<double> v;
    for (const auto& e : entries) v.push_back(e.val);
    std::sort(v.begin(), v.end(), std::greater<>());
    if (v.size() > q_) v.resize(q_);
    return v;
  };
  EXPECT_EQ(vals(sw.query(), q), vals(ref.query(), q));
}

}  // namespace
