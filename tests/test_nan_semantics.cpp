// Non-finite value semantics: NaN and the reserved empty value are never
// admitted (they would corrupt selection invariants), −Inf is always
// below the admission bound, +Inf is an ordinary — if extreme — value,
// and scalar and batch ingestion agree on all of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "qmax/amortized_qmax.hpp"
#include "qmax/exp_decay.hpp"
#include "qmax/invariants.hpp"
#include "qmax/qmax.hpp"
#include "qmax/sliding.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::check_invariants;
using qmax::ExpDecayQMax;
using qmax::kEmptyValue;
using qmax::QMax;
using qmax::SlackQMax;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kLowest = std::numeric_limits<double>::lowest();

/// A stream laced with every poison value between ordinary ones.
std::vector<double> poisoned_stream(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> vals;
  vals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 13) {
      case 3: vals.push_back(kNaN); break;
      case 7: vals.push_back(kInf); break;
      case 9: vals.push_back(-kInf); break;
      case 11: vals.push_back(kLowest); break;
      default: vals.push_back(dist(rng)); break;
    }
  }
  return vals;
}

TEST(NanSemantics, QMaxScalarRejectsPoison) {
  QMax<> r(4, 0.5);
  EXPECT_FALSE(r.add(1, kNaN));
  EXPECT_FALSE(r.add(2, kLowest));  // the reserved empty value
  EXPECT_FALSE(r.add(3, -kInf));    // never above the admission bound
  EXPECT_TRUE(r.add(4, kInf));      // an ordinary, extreme value
  EXPECT_TRUE(r.add(5, 0.5));
  EXPECT_EQ(r.admitted(), 2u);
  EXPECT_EQ(r.processed(), 5u);
  // Nothing poisonous reached the array.
  for (const auto& e : r.query()) EXPECT_FALSE(std::isnan(e.val));
  EXPECT_TRUE(check_invariants(r).ok()) << check_invariants(r).to_string();
}

TEST(NanSemantics, AmortizedScalarRejectsPoison) {
  AmortizedQMax<> r(4, 0.5);
  EXPECT_FALSE(r.add(1, kNaN));
  EXPECT_FALSE(r.add(2, kLowest));
  EXPECT_FALSE(r.add(3, -kInf));
  EXPECT_TRUE(r.add(4, kInf));
  EXPECT_TRUE(r.add(5, 0.5));
  EXPECT_TRUE(check_invariants(r).ok()) << check_invariants(r).to_string();
}

TEST(NanSemantics, InfinityBehavesAsMaximum) {
  QMax<> r(2, 0.5);
  for (std::uint32_t i = 0; i < 1'000; ++i) {
    r.add(i, static_cast<double>(i));
  }
  r.add(9'999, kInf);
  const auto top = r.query();
  ASSERT_EQ(top.size(), 2u);
  bool has_inf = false;
  for (const auto& e : top) has_inf |= std::isinf(e.val);
  EXPECT_TRUE(has_inf) << "+Inf must rank above every finite value";
  EXPECT_TRUE(check_invariants(r).ok());
}

TEST(NanSemantics, ScalarAndBatchAgreeOnPoisonedStream) {
  const std::size_t n = 50'000;
  const auto vals = poisoned_stream(n, 21);
  std::vector<std::uint64_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;

  QMax<> scalar(32, 0.25);
  QMax<> batched(32, 0.25);
  std::size_t scalar_admitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scalar_admitted += scalar.add(ids[i], vals[i]) ? 1 : 0;
  }
  std::size_t batch_admitted = 0;
  for (std::size_t i = 0; i < n; i += 1'024) {
    const std::size_t m = std::min<std::size_t>(1'024, n - i);
    batch_admitted += batched.add_batch(ids.data() + i, vals.data() + i, m);
  }

  EXPECT_EQ(scalar_admitted, batch_admitted);
  EXPECT_EQ(scalar.threshold(), batched.threshold());
  auto sq = scalar.query();
  auto bq = batched.query();
  auto key = [](const auto& a, const auto& b) {
    return a.val != b.val ? a.val < b.val : a.id < b.id;
  };
  std::sort(sq.begin(), sq.end(), key);
  std::sort(bq.begin(), bq.end(), key);
  ASSERT_EQ(sq.size(), bq.size());
  for (std::size_t i = 0; i < sq.size(); ++i) {
    EXPECT_EQ(sq[i].val, bq[i].val);
    EXPECT_EQ(sq[i].id, bq[i].id);
  }
  EXPECT_TRUE(check_invariants(scalar).ok());
  EXPECT_TRUE(check_invariants(batched).ok());
}

TEST(NanSemantics, ExpDecayAcceptsOnlyPositiveFiniteWeights) {
  ExpDecayQMax<> r(4, 0.9);
  EXPECT_FALSE(r.add(1, kNaN));
  EXPECT_FALSE(r.add(2, 0.0));
  EXPECT_FALSE(r.add(3, -1.0));
  EXPECT_FALSE(r.add(4, kInf));  // log-domain key would be +Inf
  EXPECT_TRUE(r.add(5, 1.0));
  EXPECT_TRUE(r.add(6, 1e-300));  // tiny but positive finite
  EXPECT_TRUE(check_invariants(r).ok()) << check_invariants(r).to_string();
}

TEST(NanSemantics, WindowVariantNeverStoresPoison) {
  SlackQMax<QMax<>> sw(500, 0.1, [] { return QMax<>(8, 0.5); });
  const auto vals = poisoned_stream(20'000, 23);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    sw.add(static_cast<std::uint32_t>(i), vals[i]);
  }
  for (const auto& e : sw.query()) EXPECT_FALSE(std::isnan(e.val));
  const auto a = check_invariants(sw);
  EXPECT_TRUE(a.ok()) << a.to_string();
}

}  // namespace
