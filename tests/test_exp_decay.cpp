// Exponential-Decay q-MAX tests (Section 5): the log-domain reduction must
// preserve the decayed-weight order exactly.
#include "qmax/exp_decay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/random.hpp"

namespace {

using qmax::ExpDecayQMax;
using qmax::common::Xoshiro256;

// Brute-force: ids of the q items with the largest val·c^(t−i).
std::set<std::uint64_t> oracle_ids(const std::vector<double>& vals, double c,
                                   std::size_t q) {
  const std::size_t t = vals.size();
  std::vector<std::pair<double, std::uint64_t>> weighted;
  for (std::size_t i = 0; i < t; ++i) {
    // log(val·c^(t−i)) = log(val) + (t−i)·log(c); compare in the log
    // domain for the same numeric robustness as the implementation.
    weighted.emplace_back(
        std::log(vals[i]) + (double(t) - double(i)) * std::log(c), i);
  }
  std::sort(weighted.begin(), weighted.end(), std::greater<>());
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < std::min(q, weighted.size()); ++i) {
    ids.insert(weighted[i].second);
  }
  return ids;
}

template <typename R>
std::set<std::uint64_t> queried_ids(const R& r) {
  std::set<std::uint64_t> ids;
  for (const auto& e : r.query_log()) ids.insert(e.id);
  return ids;
}

TEST(ExpDecayQMax, RejectsBadDecay) {
  EXPECT_THROW(ExpDecayQMax<>(4, 0.0), std::invalid_argument);
  EXPECT_THROW(ExpDecayQMax<>(4, 1.5), std::invalid_argument);
  EXPECT_THROW(ExpDecayQMax<>(4, -0.5), std::invalid_argument);
}

TEST(ExpDecayQMax, RejectsNonPositiveWeights) {
  ExpDecayQMax<> r(4, 0.9);
  EXPECT_FALSE(r.add(1, 0.0));
  EXPECT_FALSE(r.add(2, -5.0));
  EXPECT_FALSE(r.add(3, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(r.add(4, std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(r.add(5, 1.0));
  EXPECT_EQ(r.query().size(), 1u);
}

TEST(ExpDecayQMax, MatchesBruteForceUniform) {
  const double c = 0.999;  // slow decay: old heavy items still compete
  const std::size_t q = 16;
  ExpDecayQMax<> r(q, c, 0.5);
  Xoshiro256 rng(1);
  std::vector<double> vals;
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    const double v = rng.uniform() * 100 + 0.001;
    vals.push_back(v);
    r.add(i, v);
  }
  EXPECT_EQ(queried_ids(r), oracle_ids(vals, c, q));
}

TEST(ExpDecayQMax, FastDecayFavorsRecency) {
  // c = 0.5: weights halve every arrival; with equal raw values the q most
  // recent items must win regardless of history length.
  const std::size_t q = 8;
  ExpDecayQMax<> r(q, 0.5, 0.5);
  const std::uint64_t n = 2'000;
  for (std::uint64_t i = 0; i < n; ++i) r.add(i, 1.0);
  const auto ids = queried_ids(r);
  ASSERT_EQ(ids.size(), q);
  for (std::uint64_t i = n - q; i < n; ++i) {
    EXPECT_TRUE(ids.count(i)) << "missing recent id " << i;
  }
}

TEST(ExpDecayQMax, HeavyOldItemSurvivesSlowDecay) {
  const std::size_t q = 4;
  const double c = 0.9999;
  ExpDecayQMax<> r(q, c, 0.5);
  r.add(0, 1e9);  // decays by c^2000 ≈ 0.82 over the run: still enormous
  Xoshiro256 rng(2);
  for (std::uint64_t i = 1; i <= 2'000; ++i) r.add(i, rng.uniform());
  EXPECT_TRUE(queried_ids(r).count(0));
}

TEST(ExpDecayQMax, DecayOneIsPlainQMax) {
  const std::size_t q = 10;
  ExpDecayQMax<> r(q, 1.0, 0.5);
  Xoshiro256 rng(3);
  std::vector<double> vals;
  for (std::uint64_t i = 0; i < 3'000; ++i) {
    const double v = rng.uniform() + 0.01;
    vals.push_back(v);
    r.add(i, v);
  }
  // Top-q by raw value.
  std::vector<std::pair<double, std::uint64_t>> byval;
  for (std::uint64_t i = 0; i < vals.size(); ++i) byval.emplace_back(vals[i], i);
  std::sort(byval.begin(), byval.end(), std::greater<>());
  std::set<std::uint64_t> expect;
  for (std::size_t i = 0; i < q; ++i) expect.insert(byval[i].second);
  EXPECT_EQ(queried_ids(r), expect);
}

TEST(ExpDecayQMax, QueryWeightsAreCurrentAndOrdered) {
  ExpDecayQMax<> r(4, 0.75, 0.5);
  r.add(10, 8.0);
  r.add(11, 8.0);
  r.add(12, 8.0);
  auto out = r.query();
  ASSERT_EQ(out.size(), 3u);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  // weight(id=10) = 8·0.75^3, ..., weight(id=12) = 8·0.75^1 (t = 3).
  EXPECT_NEAR(out[0].val, 8.0 * std::pow(0.75, 3), 1e-9);
  EXPECT_NEAR(out[1].val, 8.0 * std::pow(0.75, 2), 1e-9);
  EXPECT_NEAR(out[2].val, 8.0 * std::pow(0.75, 1), 1e-9);
}

TEST(ExpDecayQMax, LongStreamNumericallyStable) {
  // The naive c^(−i) overflows around i ≈ 7000 for c = 0.9; the log-domain
  // form must sail through millions of items.
  const std::size_t q = 8;
  const double c = 0.9;
  ExpDecayQMax<> r(q, c, 0.5);
  Xoshiro256 rng(4);
  const std::uint64_t n = 1'000'000;
  for (std::uint64_t i = 0; i < n; ++i) r.add(i, rng.uniform() * 10 + 0.1);
  const auto out = r.query_log();
  ASSERT_EQ(out.size(), q);
  for (const auto& e : out) {
    EXPECT_TRUE(std::isfinite(e.val));
    EXPECT_GE(e.id, n - 200) << "with c=0.9 only very recent items survive";
  }
  r.reset();
  EXPECT_EQ(r.processed(), 0u);
}

}  // namespace
