// Windowed application compositions — the paper's §2.1 claim that q-MAX
// "extends these methods to slack windows": Priority Sampling and NWHH
// instantiated over SlackQMax backends, with no application changes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/priority_sampling.hpp"
#include "common/random.hpp"
#include "qmax/qmax.hpp"
#include "qmax/sliding.hpp"

namespace {

using qmax::QMax;
using qmax::SlackQMax;
using qmax::apps::PrioritySampler;
using qmax::apps::SamplingEntry;
using qmax::apps::WeightedKey;
using qmax::common::Xoshiro256;

using BaseR = QMax<WeightedKey, double>;
using WindowR = SlackQMax<BaseR>;

TEST(WindowedPrioritySampling, SamplesOnlyRecentKeys) {
  // Keys arriving > W items ago must never be sampled, however heavy.
  const std::size_t k = 64;
  const std::uint64_t W = 10'000;
  PrioritySampler<WindowR> ps(
      k, WindowR(W, 0.1, [&] { return BaseR(k + 1, 0.5); }));
  // Epoch 1: heavy old keys 0..99.
  for (std::uint64_t key = 0; key < 100; ++key) ps.add(key, 1e9);
  // Epoch 2: light recent keys, enough to slide the old ones out.
  Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < 3 * W; ++i) {
    ps.add(1'000 + i, rng.uniform() + 0.1);
  }
  for (const auto& s : ps.sample()) {
    EXPECT_GE(s.key, 1'000u) << "expired heavy key sampled";
  }
}

TEST(WindowedPrioritySampling, RecentHeavyKeysDominate) {
  const std::size_t k = 128;
  const std::uint64_t W = 20'000;
  PrioritySampler<WindowR> ps(
      k, WindowR(W, 0.1, [&] { return BaseR(k + 1, 0.5); }), /*seed=*/7);
  Xoshiro256 rng(2);
  // Noise, then a recent window with planted heavy keys.
  for (std::uint64_t i = 0; i < 2 * W; ++i) {
    ps.add(100'000 + i, rng.uniform());
  }
  for (std::uint64_t key = 0; key < 10; ++key) ps.add(key, 10'000.0);
  for (std::uint64_t i = 0; i < W / 2; ++i) {
    ps.add(500'000 + i, rng.uniform());
  }
  std::set<std::uint64_t> sampled;
  for (const auto& s : ps.sample()) sampled.insert(s.key);
  int heavy_found = 0;
  for (std::uint64_t key = 0; key < 10; ++key) {
    heavy_found += sampled.count(key);
  }
  EXPECT_GE(heavy_found, 9) << "recent heavy keys missing from the sample";
}

TEST(WindowedPrioritySampling, TotalTracksWindowWeight) {
  // The estimator is scoped to the (slack) window: its total-weight
  // estimate tracks the recent window's weight, not the stream's.
  const std::size_t k = 512;
  const std::uint64_t W = 50'000;
  PrioritySampler<WindowR> ps(
      k, WindowR(W, 0.1, [&] { return BaseR(k + 1, 0.25); }), /*seed=*/3);
  Xoshiro256 rng(3);
  // Long heavy past (weight 10 each), then a light present (weight 1).
  for (std::uint64_t i = 0; i < 4 * W; ++i) ps.add(i, 10.0);
  for (std::uint64_t i = 0; i < W; ++i) ps.add(10'000'000 + i, 1.0);
  const double est = ps.total_sum();
  // Window weight ≈ W·1; stream weight ≈ 4W·10 + W. The estimate must be
  // near the former, nowhere near the latter.
  EXPECT_LT(est, 3.0 * double(W));
  EXPECT_GT(est, 0.3 * double(W));
}

}  // namespace
