// Network-wide heavy hitters: no double counting across overlapping NMPs,
// frequency accuracy, heavy-hitter completeness, and the sliding-window
// variant of Theorem 8.
#include "apps/nwhh.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/heap_qmax.hpp"
#include "common/random.hpp"
#include "common/zipf.hpp"
#include "qmax/qmax.hpp"
#include "qmax/sliding.hpp"

namespace {

using qmax::QMax;
using qmax::SlackQMax;
using qmax::apps::Nmp;
using qmax::apps::NwhhController;
using qmax::apps::NwhhEntry;
using qmax::apps::PacketSample;
using qmax::apps::nwhh_sample_size;
using qmax::common::Xoshiro256;
using qmax::common::ZipfGenerator;

using QMaxR = QMax<PacketSample, double>;
using HeapR = qmax::baselines::HeapQMax<PacketSample, double>;

TEST(Nwhh, SampleSizeFormula) {
  // k = ln(2/δ)/(2ε²): spot values.
  EXPECT_EQ(nwhh_sample_size(0.1, 0.05), 185u);
  EXPECT_GT(nwhh_sample_size(0.01, 0.05), 18'000u);
}

TEST(Nwhh, NoDoubleCountingAcrossOverlappingNmps) {
  // Every packet traverses BOTH NMPs; the merged total must reflect the
  // distinct packet population, not twice that.
  const std::size_t k = 512;
  Nmp<HeapR> nmp1(k, HeapR(k)), nmp2(k, HeapR(k));
  const std::uint64_t packets = 100'000;
  Xoshiro256 rng(1);
  for (std::uint64_t pid = 0; pid < packets; ++pid) {
    const std::uint64_t flow = rng.bounded(100);
    nmp1.observe(pid, flow);
    nmp2.observe(pid, flow);
  }
  NwhhController ctl(k);
  ctl.collect(nmp1);
  ctl.collect(nmp2);
  EXPECT_NEAR(ctl.total_packets(), double(packets), double(packets) * 0.15);
}

TEST(Nwhh, PartitionedTrafficSumsUp) {
  // Packets split across NMPs with no overlap: the union is measured.
  const std::size_t k = 512;
  Nmp<HeapR> nmp1(k, HeapR(k)), nmp2(k, HeapR(k)), nmp3(k, HeapR(k));
  const std::uint64_t packets = 90'000;
  Xoshiro256 rng(2);
  for (std::uint64_t pid = 0; pid < packets; ++pid) {
    const std::uint64_t flow = rng.bounded(50);
    if (pid % 3 == 0) nmp1.observe(pid, flow);
    if (pid % 3 == 1) nmp2.observe(pid, flow);
    if (pid % 3 == 2) nmp3.observe(pid, flow);
  }
  NwhhController ctl(k);
  ctl.collect(nmp1);
  ctl.collect(nmp2);
  ctl.collect(nmp3);
  EXPECT_NEAR(ctl.total_packets(), double(packets), double(packets) * 0.15);
}

TEST(Nwhh, FrequencyEstimatesWithinEpsilon) {
  const double eps = 0.03, delta = 0.05;
  const std::size_t k = nwhh_sample_size(eps, delta);
  Nmp<QMaxR> nmp(k, QMaxR(k, 0.25));
  const std::uint64_t packets = 200'000;
  // Flow 7 takes 20% of traffic; the rest is uniform noise.
  Xoshiro256 rng(3);
  for (std::uint64_t pid = 0; pid < packets; ++pid) {
    const std::uint64_t flow = rng.uniform() < 0.2 ? 7 : 100 + rng.bounded(1'000);
    nmp.observe(pid, flow);
  }
  NwhhController ctl(k);
  ctl.collect(nmp);
  EXPECT_NEAR(ctl.estimate(7), 0.2 * double(packets),
              2.0 * eps * double(packets));
}

TEST(Nwhh, HeavyHittersHaveNoFalseNegatives) {
  const std::size_t k = 2'000;
  Nmp<QMaxR> nmp(k, QMaxR(k, 0.25));
  Xoshiro256 rng(4);
  // Three planted heavy flows at 30%/20%/10%, rest uniform.
  std::map<std::uint64_t, std::uint64_t> truth;
  const std::uint64_t packets = 150'000;
  for (std::uint64_t pid = 0; pid < packets; ++pid) {
    const double u = rng.uniform();
    std::uint64_t flow;
    if (u < 0.30) flow = 1;
    else if (u < 0.50) flow = 2;
    else if (u < 0.60) flow = 3;
    else flow = 1'000 + rng.bounded(10'000);
    ++truth[flow];
    nmp.observe(pid, flow);
  }
  NwhhController ctl(k);
  ctl.collect(nmp);
  // Query at 8%: flows 1-3 (≥10%) must all be reported.
  std::set<std::uint64_t> reported;
  for (const auto& [flow, est] : ctl.heavy_hitters(0.08)) {
    reported.insert(flow);
  }
  EXPECT_TRUE(reported.count(1));
  EXPECT_TRUE(reported.count(2));
  EXPECT_TRUE(reported.count(3));
}

TEST(Nwhh, BackendsProduceIdenticalSamples) {
  const std::size_t k = 256;
  Nmp<QMaxR> a(k, QMaxR(k, 0.5));
  Nmp<HeapR> b(k, HeapR(k));
  Xoshiro256 rng(5);
  for (std::uint64_t pid = 0; pid < 50'000; ++pid) {
    const std::uint64_t flow = rng.bounded(64);
    a.observe(pid, flow);
    b.observe(pid, flow);
  }
  NwhhController ca(k), cb(k);
  ca.collect(a);
  cb.collect(b);
  ASSERT_EQ(ca.sample().size(), cb.sample().size());
  for (std::size_t i = 0; i < ca.sample().size(); ++i) {
    EXPECT_EQ(ca.sample()[i].id.packet_id, cb.sample()[i].id.packet_id);
  }
}

TEST(NwhhSliding, WindowedSampleForgetsOldTraffic) {
  // Theorem 8: an NMP over a slack-window reservoir. Flood flow 99 early,
  // then send only uniform traffic for >> W packets: flow 99 must vanish
  // from the heavy-hitter report.
  const std::size_t k = 256;
  const std::uint64_t window = 20'000;
  using SlidingR = SlackQMax<QMaxR>;
  SlidingR sliding(window, 0.1, [&] { return QMaxR(k, 0.5); });
  Nmp<SlidingR> nmp(k, std::move(sliding));
  std::uint64_t pid = 0;
  for (; pid < 30'000; ++pid) nmp.observe(pid, 99);
  Xoshiro256 rng(6);
  for (std::uint64_t i = 0; i < 3 * window; ++i, ++pid) {
    nmp.observe(pid, 1'000 + rng.bounded(500));
  }
  NwhhController ctl(k);
  ctl.collect(nmp);
  for (const auto& [flow, est] : ctl.heavy_hitters(0.05)) {
    EXPECT_NE(flow, 99u) << "expired flow still reported as heavy";
  }
}

TEST(NwhhSliding, RecentHeavyFlowIsReported) {
  const std::size_t k = 512;
  const std::uint64_t window = 10'000;
  using SlidingR = SlackQMax<QMaxR>;
  Nmp<SlidingR> nmp(k, SlidingR(window, 0.1, [&] { return QMaxR(k, 0.5); }));
  Xoshiro256 rng(7);
  std::uint64_t pid = 0;
  // Background noise then a recent 40% burst of flow 5.
  for (std::uint64_t i = 0; i < 50'000; ++i, ++pid) {
    nmp.observe(pid, 1'000 + rng.bounded(2'000));
  }
  for (std::uint64_t i = 0; i < window; ++i, ++pid) {
    nmp.observe(pid, rng.uniform() < 0.4 ? 5 : 1'000 + rng.bounded(2'000));
  }
  NwhhController ctl(k);
  ctl.collect(nmp);
  bool found = false;
  for (const auto& [flow, est] : ctl.heavy_hitters(0.2)) found |= (flow == 5);
  EXPECT_TRUE(found);
}

}  // namespace
