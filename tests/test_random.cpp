// PRNG determinism and distribution smoke tests.
#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using qmax::common::Xoshiro256;

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    EXPECT_NE(x, c());  // astronomically unlikely to collide repeatedly
  }
}

TEST(Xoshiro256, UniformMeanAndVariance) {
  Xoshiro256 rng(7);
  double sum = 0, sum2 = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Xoshiro256, BoundedIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(9);
  int counts[7] = {};
  const int n = 140'000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    counts[v]++;
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7, 800);
}

TEST(Xoshiro256, Open0NeverZero) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_GT(rng.uniform_open0(), 0.0);
  }
}

TEST(Normal, MomentsMatch) {
  Xoshiro256 rng(13);
  double sum = 0, sum2 = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = qmax::common::normal(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256 rng(17);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += qmax::common::exponential(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

}  // namespace
