// Randomized differential fuzzing: interleaved add / query / reset
// operation sequences executed simultaneously against every reservoir and
// the trivially-correct multiset oracle. Any divergence in the returned
// value multisets is a bug in one of the structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "baselines/heap_qmax.hpp"
#include "baselines/skiplist_qmax.hpp"
#include "baselines/sorted_qmax.hpp"
#include "common/random.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/qmax.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::QMax;
using qmax::common::Xoshiro256;

template <typename R>
std::vector<double> snapshot(const R& r) {
  std::vector<double> v;
  for (const auto& e : r.query()) v.push_back(e.val);
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

struct FuzzParam {
  std::uint64_t seed;
  std::size_t q;
  double gamma;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(DifferentialFuzz, AllBackendsAgreeUnderRandomOps) {
  const auto p = GetParam();
  Xoshiro256 rng(p.seed);

  QMax<> deam(p.q, p.gamma);
  AmortizedQMax<> amort(p.q, p.gamma);
  qmax::baselines::HeapQMax<> heap(p.q);
  qmax::baselines::SkipListQMax<> skip(p.q);
  qmax::baselines::SortedQMax<> oracle(p.q);

  std::uint64_t next_id = 0;
  const int ops = 30'000;
  for (int op = 0; op < ops; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.90) {
      // Value generator mixes scales, ties, negatives and extremes.
      double v;
      const double kind = rng.uniform();
      if (kind < 0.3) v = double(rng.bounded(16));          // ties
      else if (kind < 0.6) v = rng.uniform();               // dense
      else if (kind < 0.8) v = rng.uniform() * 1e12;        // large
      else if (kind < 0.95) v = -rng.uniform() * 1e6;       // negative
      else v = (op % 2 != 0) ? 1e308 : -1e308;              // extremes
      const std::uint64_t id = next_id++;
      deam.add(id, v);
      amort.add(id, v);
      heap.add(id, v);
      skip.add(id, v);
      oracle.add(id, v);
    } else if (dice < 0.995) {
      const auto expect = snapshot(oracle);
      ASSERT_EQ(snapshot(deam), expect) << "QMax diverged at op " << op;
      ASSERT_EQ(snapshot(amort), expect)
          << "AmortizedQMax diverged at op " << op;
      ASSERT_EQ(snapshot(heap), expect) << "Heap diverged at op " << op;
      ASSERT_EQ(snapshot(skip), expect) << "SkipList diverged at op " << op;
    } else {
      deam.reset();
      amort.reset();
      heap.reset();
      skip.reset();
      oracle.reset();
    }
  }
  const auto expect = snapshot(oracle);
  EXPECT_EQ(snapshot(deam), expect);
  EXPECT_EQ(snapshot(amort), expect);
  EXPECT_EQ(snapshot(heap), expect);
  EXPECT_EQ(snapshot(skip), expect);
}

std::vector<FuzzParam> fuzz_grid() {
  std::vector<FuzzParam> g;
  std::uint64_t seed = 1;
  for (std::size_t q : {1ul, 3ul, 17ul, 128ul, 1000ul}) {
    for (double gamma : {0.01, 0.3, 1.5}) {
      g.push_back(FuzzParam{seed++, q, gamma});
    }
  }
  return g;
}

INSTANTIATE_TEST_SUITE_P(Grid, DifferentialFuzz,
                         ::testing::ValuesIn(fuzz_grid()),
                         [](const auto& param_info) {
                           std::string name = "s";
                           name += std::to_string(param_info.param.seed);
                           name += "_q";
                           name += std::to_string(param_info.param.q);
                           name += "_g";
                           name += std::to_string(
                               int(param_info.param.gamma * 100));
                           return name;
                         });

// ---- Batch-vs-scalar differential ------------------------------------
//
// add_batch is specified to be *equivalent* to in-order add() calls — not
// merely to produce an equally valid top q. Twin reservoirs consume the
// same stream, one item at a time vs. through add_batch under a random
// batch-size schedule (including empty batches and batches spanning
// several prefilter blocks and iteration endings); the twins must agree on
// threshold, counters, the exact eviction-callback sequence, and the query
// multiset at every checkpoint.

enum class StreamKind { kRandom, kAllTies, kMonotone, kNanLaced };

struct BatchFuzzParam {
  std::uint64_t seed;
  std::size_t q;
  double gamma;
  std::size_t n;
  StreamKind kind;
};

std::vector<double> make_stream(const BatchFuzzParam& p) {
  Xoshiro256 rng(p.seed);
  std::vector<double> v(p.n);
  switch (p.kind) {
    case StreamKind::kRandom:
      for (auto& x : v) x = rng.uniform();
      break;
    case StreamKind::kAllTies:
      // Ψ reaches the tie value, then `val > Ψ` rejects everything: the
      // prefilter must agree with the scalar comparison on exact ties.
      for (auto& x : v) x = 42.0;
      break;
    case StreamKind::kMonotone:
      // Every item beats Ψ: zero rejections, maximal iteration-boundary
      // traffic inside batches.
      for (std::size_t i = 0; i < p.n; ++i) v[i] = static_cast<double>(i);
      break;
    case StreamKind::kNanLaced:
      for (std::size_t i = 0; i < p.n; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.1) {
          v[i] = std::numeric_limits<double>::quiet_NaN();
        } else if (dice < 0.15) {
          v[i] = qmax::kEmptyValue<double>;
        } else {
          v[i] = rng.uniform();
        }
      }
      break;
  }
  return v;
}

class BatchDifferentialFuzz : public ::testing::TestWithParam<BatchFuzzParam> {
};

TEST_P(BatchDifferentialFuzz, BatchPathMatchesScalarPath) {
  const auto p = GetParam();
  const std::vector<double> stream = make_stream(p);
  Xoshiro256 sched(p.seed ^ 0x9e3779b97f4a7c15ULL);

  QMax<> scalar(p.q, p.gamma);
  QMax<> batched(p.q, p.gamma);
  AmortizedQMax<> am_scalar(p.q, p.gamma);
  AmortizedQMax<> am_batched(p.q, p.gamma);

  std::vector<qmax::Entry> scalar_evicted, batched_evicted;
  scalar.set_evict_callback(
      [&](const qmax::Entry& e) { scalar_evicted.push_back(e); });
  batched.set_evict_callback(
      [&](const qmax::Entry& e) { batched_evicted.push_back(e); });

  std::vector<std::uint64_t> ids(stream.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;

  std::size_t i = 0;
  std::size_t chunks = 0;
  while (i < stream.size()) {
    // Schedule mixes empty, tiny, ~g-sized and multi-prefilter-block
    // batches (the prefilter scans 512-value blocks).
    std::size_t m;
    const double dice = sched.uniform();
    if (dice < 0.05) m = 0;
    else if (dice < 0.35) m = 1 + sched.bounded(8);
    else if (dice < 0.85) m = 1 + sched.bounded(300);
    else m = 513 + sched.bounded(1500);
    m = std::min(m, stream.size() - i);

    for (std::size_t j = 0; j < m; ++j) {
      scalar.add(ids[i + j], stream[i + j]);
      am_scalar.add(ids[i + j], stream[i + j]);
    }
    batched.add_batch(ids.data() + i, stream.data() + i, m);
    am_batched.add_batch(ids.data() + i, stream.data() + i, m);
    i += m;

    ASSERT_EQ(scalar.threshold(), batched.threshold()) << "at item " << i;
    ASSERT_EQ(scalar.processed(), batched.processed()) << "at item " << i;
    ASSERT_EQ(scalar.admitted(), batched.admitted()) << "at item " << i;
    ASSERT_EQ(scalar.live_count(), batched.live_count()) << "at item " << i;
    ASSERT_EQ(am_scalar.threshold(), am_batched.threshold())
        << "amortized, at item " << i;
    ASSERT_EQ(am_scalar.admitted(), am_batched.admitted())
        << "amortized, at item " << i;
    if (++chunks % 64 == 0) {  // query is O(capacity): sample it
      ASSERT_EQ(snapshot(scalar), snapshot(batched)) << "at item " << i;
      ASSERT_EQ(snapshot(am_scalar), snapshot(am_batched))
          << "amortized, at item " << i;
    }
  }

  EXPECT_EQ(snapshot(scalar), snapshot(batched));
  EXPECT_EQ(snapshot(am_scalar), snapshot(am_batched));
  // Exact sequence (order included): the batch path must end iterations at
  // precisely the scalar points with bit-identical array state.
  EXPECT_EQ(scalar_evicted, batched_evicted);
}

std::vector<BatchFuzzParam> batch_fuzz_grid() {
  std::vector<BatchFuzzParam> g;
  std::uint64_t seed = 101;
  for (const StreamKind kind :
       {StreamKind::kRandom, StreamKind::kAllTies, StreamKind::kMonotone,
        StreamKind::kNanLaced}) {
    g.push_back(BatchFuzzParam{seed++, 17, 0.3, 60'000, kind});
    g.push_back(BatchFuzzParam{seed++, 1000, 0.25, 200'000, kind});
  }
  // Acceptance-scale streams: ≥ 1M items through the batch path.
  g.push_back(
      BatchFuzzParam{seed++, 1000, 0.25, 1'000'000, StreamKind::kRandom});
  g.push_back(
      BatchFuzzParam{seed++, 1000, 0.25, 1'000'000, StreamKind::kNanLaced});
  return g;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchDifferentialFuzz, ::testing::ValuesIn(batch_fuzz_grid()),
    [](const auto& param_info) {
      const auto& p = param_info.param;
      std::string name = "s";
      name += std::to_string(p.seed);
      name += "_q";
      name += std::to_string(p.q);
      name += "_n";
      name += std::to_string(p.n / 1000);
      name += "k_k";
      name += std::to_string(static_cast<int>(p.kind));
      return name;
    });

}  // namespace
