// Randomized differential fuzzing: interleaved add / query / reset
// operation sequences executed simultaneously against every reservoir and
// the trivially-correct multiset oracle. Any divergence in the returned
// value multisets is a bug in one of the structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/heap_qmax.hpp"
#include "baselines/skiplist_qmax.hpp"
#include "baselines/sorted_qmax.hpp"
#include "common/random.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/qmax.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::QMax;
using qmax::common::Xoshiro256;

template <typename R>
std::vector<double> snapshot(const R& r) {
  std::vector<double> v;
  for (const auto& e : r.query()) v.push_back(e.val);
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

struct FuzzParam {
  std::uint64_t seed;
  std::size_t q;
  double gamma;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(DifferentialFuzz, AllBackendsAgreeUnderRandomOps) {
  const auto p = GetParam();
  Xoshiro256 rng(p.seed);

  QMax<> deam(p.q, p.gamma);
  AmortizedQMax<> amort(p.q, p.gamma);
  qmax::baselines::HeapQMax<> heap(p.q);
  qmax::baselines::SkipListQMax<> skip(p.q);
  qmax::baselines::SortedQMax<> oracle(p.q);

  std::uint64_t next_id = 0;
  const int ops = 30'000;
  for (int op = 0; op < ops; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.90) {
      // Value generator mixes scales, ties, negatives and extremes.
      double v;
      const double kind = rng.uniform();
      if (kind < 0.3) v = double(rng.bounded(16));          // ties
      else if (kind < 0.6) v = rng.uniform();               // dense
      else if (kind < 0.8) v = rng.uniform() * 1e12;        // large
      else if (kind < 0.95) v = -rng.uniform() * 1e6;       // negative
      else v = (op % 2 != 0) ? 1e308 : -1e308;              // extremes
      const std::uint64_t id = next_id++;
      deam.add(id, v);
      amort.add(id, v);
      heap.add(id, v);
      skip.add(id, v);
      oracle.add(id, v);
    } else if (dice < 0.995) {
      const auto expect = snapshot(oracle);
      ASSERT_EQ(snapshot(deam), expect) << "QMax diverged at op " << op;
      ASSERT_EQ(snapshot(amort), expect)
          << "AmortizedQMax diverged at op " << op;
      ASSERT_EQ(snapshot(heap), expect) << "Heap diverged at op " << op;
      ASSERT_EQ(snapshot(skip), expect) << "SkipList diverged at op " << op;
    } else {
      deam.reset();
      amort.reset();
      heap.reset();
      skip.reset();
      oracle.reset();
    }
  }
  const auto expect = snapshot(oracle);
  EXPECT_EQ(snapshot(deam), expect);
  EXPECT_EQ(snapshot(amort), expect);
  EXPECT_EQ(snapshot(heap), expect);
  EXPECT_EQ(snapshot(skip), expect);
}

std::vector<FuzzParam> fuzz_grid() {
  std::vector<FuzzParam> g;
  std::uint64_t seed = 1;
  for (std::size_t q : {1ul, 3ul, 17ul, 128ul, 1000ul}) {
    for (double gamma : {0.01, 0.3, 1.5}) {
      g.push_back(FuzzParam{seed++, q, gamma});
    }
  }
  return g;
}

INSTANTIATE_TEST_SUITE_P(Grid, DifferentialFuzz,
                         ::testing::ValuesIn(fuzz_grid()),
                         [](const auto& param_info) {
                           std::string name = "s";
                           name += std::to_string(param_info.param.seed);
                           name += "_q";
                           name += std::to_string(param_info.param.q);
                           name += "_g";
                           name += std::to_string(
                               int(param_info.param.gamma * 100));
                           return name;
                         });

}  // namespace
