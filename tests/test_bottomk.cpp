// Bottom-k sketch tests: estimator accuracy and mergeability.
#include "apps/bottomk.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baselines/heap_qmax.hpp"
#include "common/random.hpp"
#include "qmax/qmax.hpp"

namespace {

using qmax::apps::BottomKSketch;
using qmax::apps::WeightedKey;
using qmax::common::Xoshiro256;

using QMaxR = qmax::QMax<WeightedKey, double>;
using HeapR = qmax::baselines::HeapQMax<WeightedKey, double>;

TEST(BottomK, KeepsMinimalRanks) {
  BottomKSketch<HeapR> sk(16, HeapR(17), /*seed=*/1);
  Xoshiro256 rng(1);
  for (std::uint64_t k = 0; k < 5'000; ++k) sk.add(k, rng.uniform() * 10 + 1);
  const auto items = sk.contents();
  ASSERT_EQ(items.size(), 16u);
  for (const auto& it : items) {
    EXPECT_GT(it.rank, 0.0);
    EXPECT_GT(it.estimate, 0.0);
    EXPECT_GE(it.estimate, it.weight);  // max(w, 1/τ) ≥ w
  }
}

TEST(BottomK, SubsetSumUnbiasedOverSeeds) {
  const std::size_t n = 3'000;
  Xoshiro256 wrng(2);
  std::vector<double> weights(n);
  double truth = 0;
  for (std::size_t k = 0; k < n; ++k) {
    weights[k] = wrng.uniform() * 4 + 0.5;
    if (k % 3 == 0) truth += weights[k];
  }
  double mean = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    BottomKSketch<HeapR> sk(128, HeapR(129), /*seed=*/500 + t);
    for (std::size_t k = 0; k < n; ++k) sk.add(k, weights[k]);
    mean += sk.subset_sum([](std::uint64_t k) { return k % 3 == 0; });
  }
  mean /= trials;
  EXPECT_NEAR(mean, truth, truth * 0.15);
}

TEST(BottomK, MergeEqualsUnionSketch) {
  // Sketching two disjoint halves and merging must give the same k
  // minimal-rank keys as sketching the union directly.
  const std::uint64_t seed = 9;
  BottomKSketch<HeapR> left(64, HeapR(65), seed);
  BottomKSketch<HeapR> right(64, HeapR(65), seed);
  BottomKSketch<HeapR> whole(64, HeapR(65), seed);
  Xoshiro256 rng(3);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    const double w = rng.uniform() * 7 + 0.1;
    (k % 2 == 0 ? left : right).add(k, w);
    whole.add(k, w);
  }
  left.merge(right);
  std::set<std::uint64_t> merged_keys, whole_keys;
  for (const auto& it : left.contents()) merged_keys.insert(it.key);
  for (const auto& it : whole.contents()) whole_keys.insert(it.key);
  EXPECT_EQ(merged_keys, whole_keys);
}

TEST(BottomK, MergeWithOverlapDoesNotDoubleCount) {
  const std::uint64_t seed = 10;
  BottomKSketch<HeapR> a(32, HeapR(33), seed);
  BottomKSketch<HeapR> b(32, HeapR(33), seed);
  Xoshiro256 rng(4);
  for (std::uint64_t k = 0; k < 2'000; ++k) {
    const double w = rng.uniform() + 0.5;
    a.add(k, w);
    if (k < 1'000) b.add(k, w);  // b sees a subset of a's keys
  }
  a.merge(b);
  // No key may appear twice among the contents.
  std::set<std::uint64_t> seen;
  for (const auto& it : a.contents()) {
    EXPECT_TRUE(seen.insert(it.key).second) << "duplicate key " << it.key;
  }
}

TEST(BottomK, QMaxBackendAgreesWithHeap) {
  const std::uint64_t seed = 11;
  BottomKSketch<QMaxR> a(48, QMaxR(49, 0.5), seed);
  BottomKSketch<HeapR> b(48, HeapR(49), seed);
  Xoshiro256 rng(5);
  for (std::uint64_t k = 0; k < 20'000; ++k) {
    const double w = rng.uniform() * 3 + 0.2;
    a.add(k, w);
    b.add(k, w);
  }
  std::set<std::uint64_t> ka, kb;
  for (const auto& it : a.contents()) ka.insert(it.key);
  for (const auto& it : b.contents()) kb.insert(it.key);
  EXPECT_EQ(ka, kb);
}

TEST(BottomK, SubsetCountAndMean) {
  // 2000 keys with weight 2.0, 2000 with weight 6.0: the count split and
  // the means must be recovered. Inclusion is weight-proportional, so
  // light keys are sampled ~3x less often; k = 768 keeps their count
  // estimate inside a 25% band.
  BottomKSketch<HeapR> sk(768, HeapR(769), /*seed=*/21);
  for (std::uint64_t k = 0; k < 4'000; ++k) {
    sk.add(k, k < 2'000 ? 2.0 : 6.0);
  }
  auto light = [](std::uint64_t k) { return k < 2'000; };
  auto heavy = [](std::uint64_t k) { return k >= 2'000; };
  EXPECT_NEAR(sk.subset_count(light), 2'000.0, 2'000.0 * 0.25);
  EXPECT_NEAR(sk.subset_count(heavy), 2'000.0, 2'000.0 * 0.25);
  EXPECT_NEAR(sk.subset_mean(light), 2.0, 0.4);
  EXPECT_NEAR(sk.subset_mean(heavy), 6.0, 1.0);
}

TEST(BottomK, SubsetVarianceSeparatesPopulations) {
  // Constant weights → variance ≈ 0; bimodal weights → variance ≈ 4
  // (values 2 and 6 equally likely: var = ((2-4)^2+(6-4)^2)/2 = 4).
  BottomKSketch<HeapR> constant(256, HeapR(257), /*seed=*/22);
  BottomKSketch<HeapR> bimodal(256, HeapR(257), /*seed=*/22);
  for (std::uint64_t k = 0; k < 4'000; ++k) {
    constant.add(k, 4.0);
    bimodal.add(k, k % 2 == 0 ? 2.0 : 6.0);
  }
  auto all = [](std::uint64_t) { return true; };
  EXPECT_NEAR(constant.subset_variance(all), 0.0, 0.2);
  EXPECT_NEAR(bimodal.subset_variance(all), 4.0, 1.2);
}

TEST(BottomK, SubsetQuantileFindsMedianRegion) {
  // Weights uniform on (0, 100): the 0.5 weighted quantile sits near
  // sqrt(0.5)*100 ≈ 70.7 (half the MASS lies below w iff w²/100² = 0.5).
  BottomKSketch<HeapR> sk(512, HeapR(513), /*seed=*/23);
  Xoshiro256 rng(23);
  for (std::uint64_t k = 0; k < 20'000; ++k) {
    sk.add(k, rng.uniform() * 100.0 + 1e-9);
  }
  auto all = [](std::uint64_t) { return true; };
  EXPECT_NEAR(sk.subset_quantile(all, 0.5), 70.7, 10.0);
  EXPECT_GT(sk.subset_quantile(all, 0.9), sk.subset_quantile(all, 0.3));
}

TEST(BottomK, RejectsNonPositiveWeights) {
  BottomKSketch<HeapR> sk(8, HeapR(9));
  EXPECT_FALSE(sk.add(1, 0.0));
  EXPECT_FALSE(sk.add(2, -1.0));
  EXPECT_TRUE(sk.contents().empty());
}

}  // namespace
