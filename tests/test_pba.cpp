// Priority-Based Aggregation: per-flow aggregation, staleness resolution,
// and agreement between the duplicate-insertion scheme and the paper's
// linear heap.
#include "apps/pba.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/heap_qmax.hpp"
#include "baselines/skiplist_qmax.hpp"
#include "common/random.hpp"
#include "common/zipf.hpp"
#include "qmax/qmax.hpp"

namespace {

using qmax::apps::Pba;
using qmax::apps::PbaLinearHeap;
using qmax::apps::WeightedKey;
using qmax::common::Xoshiro256;
using qmax::common::ZipfGenerator;

using QMaxR = qmax::QMax<WeightedKey, double>;
using HeapR = qmax::baselines::HeapQMax<WeightedKey, double>;
using SkipR = qmax::baselines::SkipListQMax<WeightedKey, double>;

TEST(Pba, AggregatesRepeatedKeys) {
  Pba<HeapR> pba(8, HeapR(9));
  pba.add(42, 10.0);
  pba.add(42, 5.0);
  pba.add(42, 2.5);
  EXPECT_DOUBLE_EQ(pba.tracked_weight(42), 17.5);
  const auto sample = pba.sample();
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0].key, 42u);
  EXPECT_DOUBLE_EQ(sample[0].weight, 17.5);
}

TEST(Pba, IgnoresNonPositiveWeights) {
  Pba<HeapR> pba(4, HeapR(5));
  pba.add(1, 0.0);
  pba.add(1, -3.0);
  EXPECT_DOUBLE_EQ(pba.tracked_weight(1), 0.0);
  EXPECT_TRUE(pba.sample().empty());
}

// Traffic with 5 planted mega-flows over a uniform noise floor. A flow's
// priority W/u is at least W (u ≤ 1), so any flow whose aggregate exceeds
// the sampling threshold τ is *deterministically* in the sample — the
// PBA guarantee these tests pin down. (A merely top-by-volume flow is
// only sampled with probability min(1, W/τ): its rank u is luck.)
template <typename AddFn>
std::map<std::uint64_t, double> planted_traffic(AddFn&& add,
                                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::map<std::uint64_t, double> truth;
  for (int i = 0; i < 100'000; ++i) {
    std::uint64_t f;
    double bytes;
    if (rng.uniform() < 0.25) {  // 5 mega flows: 5% of packets each
      f = 1 + rng.bounded(5);
      bytes = 1'000.0;
    } else {  // 10k uniform noise flows
      f = 100 + rng.bounded(10'000);
      bytes = 40.0 + double(rng.bounded(200));
    }
    truth[f] += bytes;
    add(f, bytes);
  }
  return truth;
}

TEST(Pba, PlantedMegaFlowsAreAlwaysSampled) {
  Pba<QMaxR> pba(256, QMaxR(257, 0.5), /*seed=*/3);
  const auto truth =
      planted_traffic([&](std::uint64_t f, double b) { pba.add(f, b); }, 3);
  std::map<std::uint64_t, double> sampled_weight;
  for (const auto& s : pba.sample()) sampled_weight[s.key] = s.weight;
  for (std::uint64_t f = 1; f <= 5; ++f) {
    ASSERT_TRUE(sampled_weight.count(f)) << "missing mega flow " << f;
    EXPECT_LE(sampled_weight[f], truth.at(f) + 1e-9);
    EXPECT_GE(sampled_weight[f], truth.at(f) * 0.5)
        << "mega flow tracked too late / aggregation lost";
  }
}

TEST(Pba, SideTableStaysBounded) {
  // The agg map must not grow with the stream: evictions reconcile it.
  Pba<QMaxR> pba(32, QMaxR(33, 0.5));
  Xoshiro256 rng(4);
  for (int i = 0; i < 200'000; ++i) {
    pba.add(rng.bounded(1'000'000), 1.0 + rng.uniform());
  }
  // Bound: reservoir capacity (live entries incl. stale duplicates).
  EXPECT_LE(pba.tracked_flows(), QMaxR(33, 0.5).capacity() + 33);
}

TEST(Pba, SideTableBoundedWithHeapBackend) {
  Pba<HeapR> pba(32, HeapR(33));
  Xoshiro256 rng(5);
  for (int i = 0; i < 200'000; ++i) {
    pba.add(rng.bounded(1'000'000), 1.0 + rng.uniform());
  }
  EXPECT_LE(pba.tracked_flows(), 33u);
}

TEST(Pba, SideTableBoundedWithSkipListBackend) {
  Pba<SkipR> pba(32, SkipR(33));
  Xoshiro256 rng(6);
  for (int i = 0; i < 200'000; ++i) {
    pba.add(rng.bounded(1'000'000), 1.0 + rng.uniform());
  }
  EXPECT_LE(pba.tracked_flows(), 33u);
}

TEST(PbaLinearHeap, MatchesGenericPbaOnPlantedFlows) {
  // The paper's O(q) heap baseline and the duplicate-insertion scheme
  // differ in eviction dynamics (duplicates shrink the generic version's
  // effective sample), but both must deterministically capture flows whose
  // aggregate exceeds the threshold, with comparable weights.
  PbaLinearHeap slow(256, /*seed=*/3);
  Pba<HeapR> fast(256, HeapR(257), /*seed=*/3);
  const auto truth = planted_traffic(
      [&](std::uint64_t f, double b) {
        slow.add(f, b);
        fast.add(f, b);
      },
      7);
  std::map<std::uint64_t, double> slow_w, fast_w;
  for (const auto& n : slow.sample()) slow_w[n.key] = n.weight;
  for (const auto& s : fast.sample()) fast_w[s.key] = s.weight;
  for (std::uint64_t f = 1; f <= 5; ++f) {
    ASSERT_TRUE(slow_w.count(f)) << "linear heap missed mega flow " << f;
    ASSERT_TRUE(fast_w.count(f)) << "generic PBA missed mega flow " << f;
    // The linear heap never loses aggregation for resident keys; the
    // generic version may restart after an eviction, so it lower-bounds.
    EXPECT_LE(fast_w[f], slow_w[f] + 1e-9);
    EXPECT_GE(fast_w[f], slow_w[f] * 0.5);
    EXPECT_NEAR(slow_w[f], truth.at(f), truth.at(f) * 0.05);
  }
}

TEST(Pba, SubsetSumExactWhenAllFlowsFit) {
  // Fewer flows than reservoir slots: every flow is tracked from its
  // first packet, the threshold never activates, and subset sums are
  // exact.
  Pba<HeapR> pba(512, HeapR(513), 12);
  Xoshiro256 rng(8);
  double truth_even = 0;
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t f = rng.bounded(400);
    const double bytes = 100.0;
    if (f % 2 == 0) truth_even += bytes;
    pba.add(f, bytes);
  }
  const double est =
      pba.subset_sum([](std::uint64_t f) { return f % 2 == 0; });
  EXPECT_DOUBLE_EQ(est, truth_even);
}

TEST(Pba, SubsetSumBoundedUnderChurn) {
  // More flows than slots: tracked weights are partial (eviction restarts
  // lose prefixes — the bias the full PBA paper corrects with adjusted
  // estimators). The simple max(W, τ) estimate must still land within a
  // constant factor and never explode upward.
  Pba<HeapR> pba(512, HeapR(513), 12);
  Xoshiro256 rng(8);
  double truth_even = 0;
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t f = rng.bounded(2'000);
    const double bytes = 100.0;
    if (f % 2 == 0) truth_even += bytes;
    pba.add(f, bytes);
  }
  const double est =
      pba.subset_sum([](std::uint64_t f) { return f % 2 == 0; });
  EXPECT_GE(est, truth_even * 0.35);
  EXPECT_LE(est, truth_even * 1.50);
}

TEST(Pba, ResetClearsAggregates) {
  Pba<QMaxR> pba(8, QMaxR(9, 0.5));
  pba.add(1, 5.0);
  pba.reset();
  EXPECT_EQ(pba.tracked_flows(), 0u);
  EXPECT_DOUBLE_EQ(pba.tracked_weight(1), 0.0);
  EXPECT_TRUE(pba.sample().empty());
}

}  // namespace
