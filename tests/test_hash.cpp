// Hash-quality and determinism tests.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

namespace {

using namespace qmax::common;

TEST(XxHash64, KnownVectors) {
  // Reference digests from the canonical xxHash implementation.
  EXPECT_EQ(xxhash64("", 0, 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxhash64("a", 1, 0), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxhash64("abc", 3, 0), 0x44BC2CF5AD770999ULL);
  const std::string long_input(101, 'x');
  EXPECT_EQ(xxhash64(long_input.data(), long_input.size(), 0),
            xxhash64(long_input.data(), long_input.size(), 0));
}

TEST(XxHash64, SeedChangesDigest) {
  const char* msg = "q-MAX";
  EXPECT_NE(xxhash64(msg, 5, 0), xxhash64(msg, 5, 1));
}

TEST(XxHash64, AllLengthsConsistent) {
  // Exercise every tail-handling branch (0..40 bytes).
  std::vector<unsigned char> buf(40);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 17 + 3);
  }
  std::set<std::uint64_t> digests;
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    digests.insert(xxhash64(buf.data(), len, 7));
  }
  EXPECT_EQ(digests.size(), buf.size() + 1) << "lengths must not collide";
}

TEST(Mix64, Bijective) {
  // mix64 is invertible; distinct inputs map to distinct outputs.
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10'000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10'000u);
}

TEST(Hash64, SeedsActIndependently) {
  // Correlation smoke test: the same keys under two seeds should agree on
  // the high bit about half the time.
  int agreements = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const bool a = hash64(i, 1) >> 63;
    const bool b = hash64(i, 2) >> 63;
    agreements += (a == b);
  }
  EXPECT_NEAR(agreements, n / 2, 1'500);
}

TEST(UnitInterval, RangeAndGranularity) {
  EXPECT_GE(to_unit_interval(0), 0.0);
  EXPECT_LT(to_unit_interval(~0ULL), 1.0);
  EXPECT_GT(to_unit_interval_open0(0), 0.0);
  EXPECT_LE(to_unit_interval_open0(~0ULL), 1.0);
}

TEST(UnitInterval, UniformityBuckets) {
  int buckets[10] = {};
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    const double u = to_unit_interval(hash64(i, 99));
    buckets[static_cast<int>(u * 10)]++;
  }
  for (int b : buckets) EXPECT_NEAR(b, 10'000, 500);
}

}  // namespace
