// Unit tests for the batched ingestion fast path (add_batch): prefilter
// edge cases on the core reservoir, and scalar-equivalence on every
// variant (amortized, sliding, time-sliding, exp-decay). The heavy
// randomized batch-vs-scalar differential lives in
// test_fuzz_differential.cpp; these tests pin down the named corners.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/batch.hpp"
#include "qmax/concepts.hpp"
#include "qmax/exp_decay.hpp"
#include "qmax/qmax.hpp"
#include "qmax/qmin.hpp"
#include "qmax/sliding.hpp"
#include "qmax/small_domain_window.hpp"
#include "qmax/time_sliding.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::Entry;
using qmax::ExpDecayQMax;
using qmax::QMax;
using qmax::QMin;
using qmax::SlackQMax;
using qmax::SmallDomainWindowMax;
using qmax::TimeSlackQMax;
using qmax::common::Xoshiro256;

static_assert(qmax::BatchReservoir<QMax<>>);
static_assert(qmax::BatchReservoir<AmortizedQMax<>>);

template <typename R>
std::vector<std::pair<double, std::uint64_t>> sorted_query(const R& r) {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (const auto& e : r.query()) out.emplace_back(e.val, e.id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> iota_ids(std::size_t n, std::uint64_t base = 0) {
  std::vector<std::uint64_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + i;
  return ids;
}

// Feed `vals` to a scalar twin and a batch twin (single add_batch call)
// and require identical observable state.
void expect_twin_equal(std::size_t q, double gamma,
                       const std::vector<double>& vals,
                       std::size_t batch_size = 0) {
  QMax<> scalar(q, gamma);
  QMax<> batched(q, gamma);
  const auto ids = iota_ids(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) scalar.add(ids[i], vals[i]);
  if (batch_size == 0) batch_size = vals.size();
  for (std::size_t i = 0; i < vals.size(); i += batch_size) {
    const std::size_t m = std::min(batch_size, vals.size() - i);
    batched.add_batch(ids.data() + i, vals.data() + i, m);
  }
  EXPECT_EQ(scalar.threshold(), batched.threshold());
  EXPECT_EQ(scalar.processed(), batched.processed());
  EXPECT_EQ(scalar.admitted(), batched.admitted());
  EXPECT_EQ(scalar.live_count(), batched.live_count());
  EXPECT_EQ(sorted_query(scalar), sorted_query(batched));
}

TEST(AddBatch, PrefilterAboveCompactsSurvivorIndices) {
  const double vals[] = {0.1, 0.9, 0.5, 0.9, 0.2};
  std::uint32_t idx[5];
  const std::size_t n = qmax::batch::prefilter_above(vals, 5, 0.5, idx);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  // NaN and the empty sentinel compare false against any bound.
  const double bad[] = {std::nan(""), qmax::kEmptyValue<double>, 1.0};
  const std::size_t m = qmax::batch::prefilter_above(
      bad, 3, std::numeric_limits<double>::lowest(), idx);
  ASSERT_EQ(m, 1u);
  EXPECT_EQ(idx[0], 2u);
}

TEST(AddBatch, EmptyBatchIsANoOp) {
  QMax<> r(10, 0.25);
  EXPECT_EQ(r.add_batch(nullptr, nullptr, 0), 0u);
  EXPECT_EQ(r.processed(), 0u);
  EXPECT_EQ(r.live_count(), 0u);
}

TEST(AddBatch, BatchStraddlingIterationBoundary) {
  // q=8, γ=0.25 → g=1: every admission ends an iteration, so any batch
  // with >1 survivor straddles a boundary.
  QMax<> probe(8, 0.25);
  std::vector<double> vals;
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) vals.push_back(rng.uniform());
  expect_twin_equal(8, 0.25, vals, 7);
  // Larger g: batch sizes chosen to land mid-iteration and across it.
  expect_twin_equal(100, 0.5, vals, 13);
}

TEST(AddBatch, BatchLargerThanGAndPrefilterBlock) {
  // 5000-item batch ≫ g and ≫ the 512-item prefilter scan block: multiple
  // blocks and many iteration endings inside a single call.
  std::vector<double> vals;
  Xoshiro256 rng(4);
  for (int i = 0; i < 5000; ++i) vals.push_back(rng.uniform());
  expect_twin_equal(50, 0.2, vals);
}

TEST(AddBatch, AllRejectedBatchLeavesStateUntouched) {
  QMax<> r(4, 0.5);
  const std::vector<double> warm = {10, 20, 30, 40, 50, 60, 70, 80};
  const auto warm_ids = iota_ids(warm.size());
  r.add_batch(warm_ids.data(), warm.data(), warm.size());
  ASSERT_GT(r.threshold(), 1.0);
  const auto before_query = sorted_query(r);
  const std::size_t before_live = r.live_count();
  const std::uint64_t before_admitted = r.admitted();

  std::vector<double> low(1000, 0.5);  // all below Ψ
  const auto low_ids = iota_ids(low.size(), 100);
  EXPECT_EQ(r.add_batch(low_ids.data(), low.data(), low.size()), 0u);
  EXPECT_EQ(r.live_count(), before_live);
  EXPECT_EQ(r.admitted(), before_admitted);
  EXPECT_EQ(r.processed(), warm.size() + low.size());
  EXPECT_EQ(sorted_query(r), before_query);
}

TEST(AddBatch, NaNAndEmptyValueInsideBatch) {
  std::vector<double> vals;
  Xoshiro256 rng(5);
  for (int i = 0; i < 400; ++i) {
    if (i % 7 == 0) {
      vals.push_back(std::nan(""));
    } else if (i % 11 == 0) {
      vals.push_back(qmax::kEmptyValue<double>);
    } else {
      vals.push_back(rng.uniform());
    }
  }
  expect_twin_equal(16, 0.25, vals, 37);
  // All-invalid batch admits nothing.
  QMax<> r(8, 0.25);
  std::vector<double> bad(64, std::nan(""));
  const auto ids = iota_ids(bad.size());
  EXPECT_EQ(r.add_batch(ids.data(), bad.data(), bad.size()), 0u);
  EXPECT_EQ(r.processed(), bad.size());
  EXPECT_EQ(r.live_count(), 0u);
}

TEST(AddBatch, SpanOverloadMatchesPointerOverload) {
  std::vector<double> vals;
  Xoshiro256 rng(6);
  for (int i = 0; i < 1000; ++i) vals.push_back(rng.uniform());
  QMax<> by_ptr(32, 0.3);
  QMax<> by_span(32, 0.3);
  const auto ids = iota_ids(vals.size());
  by_ptr.add_batch(ids.data(), vals.data(), vals.size());
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    entries.push_back(Entry{ids[i], vals[i]});
  }
  by_span.add_batch(std::span<const Entry>(entries));
  EXPECT_EQ(by_ptr.threshold(), by_span.threshold());
  EXPECT_EQ(by_ptr.admitted(), by_span.admitted());
  EXPECT_EQ(sorted_query(by_ptr), sorted_query(by_span));
}

TEST(AddBatch, EvictionCallbackSequenceMatchesScalar) {
  std::vector<double> vals;
  Xoshiro256 rng(7);
  for (int i = 0; i < 3000; ++i) vals.push_back(rng.uniform());
  QMax<> scalar(20, 0.4);
  QMax<> batched(20, 0.4);
  std::vector<Entry> sc_ev, ba_ev;
  scalar.set_evict_callback([&](const Entry& e) { sc_ev.push_back(e); });
  batched.set_evict_callback([&](const Entry& e) { ba_ev.push_back(e); });
  const auto ids = iota_ids(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) scalar.add(ids[i], vals[i]);
  for (std::size_t i = 0; i < vals.size(); i += 59) {
    const std::size_t m = std::min<std::size_t>(59, vals.size() - i);
    batched.add_batch(ids.data() + i, vals.data() + i, m);
  }
  EXPECT_EQ(sc_ev, ba_ev);  // exact sequence, not just multiset
}

TEST(AddBatch, AmortizedVariantMatchesScalar) {
  std::vector<double> vals;
  Xoshiro256 rng(8);
  for (int i = 0; i < 4000; ++i) vals.push_back(rng.uniform());
  AmortizedQMax<> scalar(64, 0.3);
  AmortizedQMax<> batched(64, 0.3);
  const auto ids = iota_ids(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) scalar.add(ids[i], vals[i]);
  for (std::size_t i = 0; i < vals.size(); i += 77) {
    const std::size_t m = std::min<std::size_t>(77, vals.size() - i);
    batched.add_batch(ids.data() + i, vals.data() + i, m);
  }
  EXPECT_EQ(scalar.threshold(), batched.threshold());
  EXPECT_EQ(scalar.processed(), batched.processed());
  EXPECT_EQ(scalar.admitted(), batched.admitted());
  EXPECT_EQ(sorted_query(scalar), sorted_query(batched));
}

template <typename S>
void feed_window_twins(S& scalar, S& batched, const std::vector<double>& vals,
                       std::size_t batch_size) {
  const auto ids = iota_ids(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) scalar.add(ids[i], vals[i]);
  for (std::size_t i = 0; i < vals.size(); i += batch_size) {
    const std::size_t m = std::min(batch_size, vals.size() - i);
    batched.add_batch(ids.data() + i, vals.data() + i, m);
  }
}

TEST(AddBatch, SlidingWindowVariantsMatchScalar) {
  std::vector<double> vals;
  Xoshiro256 rng(9);
  for (int i = 0; i < 6000; ++i) vals.push_back(rng.uniform());
  auto factory = [] { return QMax<>(16, 0.25); };
  struct Cfg {
    std::size_t levels;
    bool lazy;
  };
  for (const Cfg cfg : {Cfg{1, false}, Cfg{2, false}, Cfg{2, true}}) {
    SlackQMax<QMax<>> scalar(
        1000, 0.1, factory,
        {.levels = cfg.levels, .lazy = cfg.lazy});
    SlackQMax<QMax<>> batched(
        1000, 0.1, factory,
        {.levels = cfg.levels, .lazy = cfg.lazy});
    // 97 is coprime to the 100-item finest block: batches straddle block
    // boundaries (and lazy-mode flush points) constantly.
    feed_window_twins(scalar, batched, vals, 97);
    EXPECT_EQ(scalar.processed(), batched.processed());
    EXPECT_EQ(sorted_query(scalar), sorted_query(batched))
        << "levels=" << cfg.levels << " lazy=" << cfg.lazy;
    EXPECT_EQ(scalar.last_coverage(), batched.last_coverage());
  }
}

TEST(AddBatch, TimeSlidingVariantMatchesScalar) {
  Xoshiro256 rng(10);
  std::vector<double> vals;
  std::vector<std::uint64_t> ts;
  std::uint64_t now = 0;
  for (int i = 0; i < 5000; ++i) {
    vals.push_back(rng.uniform());
    now += rng.bounded(5);  // bursts (repeats) and quiet gaps
    ts.push_back(now);
  }
  auto factory = [] { return QMax<>(16, 0.25); };
  TimeSlackQMax<QMax<>> scalar(500, 0.2, factory);
  TimeSlackQMax<QMax<>> batched(500, 0.2, factory);
  const auto ids = iota_ids(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    scalar.add(ids[i], vals[i], ts[i]);
  }
  for (std::size_t i = 0; i < vals.size(); i += 83) {
    const std::size_t m = std::min<std::size_t>(83, vals.size() - i);
    batched.add_batch(ids.data() + i, vals.data() + i, ts.data() + i, m);
  }
  EXPECT_EQ(scalar.processed(), batched.processed());
  EXPECT_EQ(scalar.now(), batched.now());
  EXPECT_EQ(sorted_query(scalar), sorted_query(batched));
  EXPECT_EQ(scalar.last_coverage(), batched.last_coverage());
}

TEST(AddBatch, TimeSlidingRejectsBackwardsTimestampsInBatch) {
  auto factory = [] { return QMax<>(8, 0.25); };
  TimeSlackQMax<QMax<>> w(100, 0.5, factory);
  const std::uint64_t ids[] = {0, 1, 2};
  const double vals[] = {1.0, 2.0, 3.0};
  const std::uint64_t ts[] = {10, 20, 5};  // goes back mid-batch
  EXPECT_THROW(w.add_batch(ids, vals, ts, 3), std::invalid_argument);
  // Like the scalar path, items before the offending one were ingested.
  EXPECT_EQ(w.processed(), 2u);
  EXPECT_EQ(w.now(), 20u);
}

TEST(AddBatch, ExpDecayVariantMatchesScalar) {
  // Invalid weights (zero, negative, inf, NaN) still consume a time index;
  // the decay shift per item must use its absolute arrival position.
  Xoshiro256 rng(11);
  std::vector<double> vals;
  for (int i = 0; i < 4000; ++i) {
    if (i % 13 == 0) {
      vals.push_back(0.0);
    } else if (i % 17 == 0) {
      vals.push_back(std::numeric_limits<double>::infinity());
    } else if (i % 19 == 0) {
      vals.push_back(std::nan(""));
    } else {
      vals.push_back(rng.uniform() * 100.0 + 1e-3);
    }
  }
  ExpDecayQMax<> scalar(32, 0.999, 0.25);
  ExpDecayQMax<> batched(32, 0.999, 0.25);
  const auto ids = iota_ids(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) scalar.add(ids[i], vals[i]);
  std::size_t i = 0;
  std::size_t step = 1;
  while (i < vals.size()) {  // varying batch sizes, including 1
    const std::size_t m = std::min(step, vals.size() - i);
    batched.add_batch(ids.data() + i, vals.data() + i, m);
    i += m;
    step = step * 2 % 1023 + 1;
  }
  EXPECT_EQ(scalar.processed(), batched.processed());
  EXPECT_EQ(scalar.inner().threshold(), batched.inner().threshold());
  EXPECT_EQ(scalar.inner().processed(), batched.inner().processed());
  std::vector<std::pair<double, std::uint64_t>> sq, bq;
  for (const auto& e : scalar.query_log()) sq.emplace_back(e.val, e.id);
  for (const auto& e : batched.query_log()) bq.emplace_back(e.val, e.id);
  std::sort(sq.begin(), sq.end());
  std::sort(bq.begin(), bq.end());
  EXPECT_EQ(sq, bq);
}

TEST(AddBatch, TelemetryCountsPrefilterRejections) {
  // Shape holds in every build; non-zero values only with the gate on.
  QMax<> r(4, 0.5);
  const std::vector<double> warm = {10, 20, 30, 40, 50, 60, 70, 80};
  const auto warm_ids = iota_ids(warm.size());
  r.add_batch(warm_ids.data(), warm.data(), warm.size());
  const std::uint64_t rejected_before = r.telem().prefilter_rejected.value();
  std::vector<double> low(100, 0.5);
  const auto low_ids = iota_ids(low.size(), 8);
  r.add_batch(low_ids.data(), low.data(), low.size());
  if constexpr (qmax::telemetry::kEnabled) {
    EXPECT_EQ(r.telem().batch_calls.value(), 2u);
    // All 100 low items are screened out: 6 full lanes + 4 tail items.
    EXPECT_EQ(r.telem().prefilter_rejected.value(), rejected_before + 100);
    EXPECT_EQ(r.telem().batch_survivors.count(), 2u);
  } else {
    EXPECT_EQ(r.telem().batch_calls.value(), 0u);
  }
}

}  // namespace

TEST(AddBatch, QMinVariantMatchesScalar) {
  std::vector<double> vals;
  Xoshiro256 rng(12);
  for (int i = 0; i < 4000; ++i) vals.push_back(rng.uniform());
  // A few adversarial values: NaN is rejected on both paths, negatives
  // and zeros exercise the sign flip around -0.0.
  vals[100] = std::numeric_limits<double>::quiet_NaN();
  vals[200] = 0.0;
  vals[300] = -0.0;
  vals[400] = -vals[401];
  QMin<QMax<>> scalar(64, 0.25);
  QMin<QMax<>> batched(64, 0.25);
  const auto ids = iota_ids(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) scalar.add(ids[i], vals[i]);
  for (std::size_t i = 0; i < vals.size(); i += 613) {
    const std::size_t m = std::min<std::size_t>(613, vals.size() - i);
    batched.add_batch(ids.data() + i, vals.data() + i, m);
  }
  EXPECT_EQ(scalar.threshold(), batched.threshold());
  EXPECT_EQ(scalar.inner().processed(), batched.inner().processed());
  EXPECT_EQ(scalar.inner().admitted(), batched.inner().admitted());
  EXPECT_EQ(scalar.live_count(), batched.live_count());
  EXPECT_EQ(sorted_query(scalar), sorted_query(batched));
}

TEST(AddBatch, SmallDomainWindowVariantMatchesScalar) {
  Xoshiro256 rng(13);
  std::vector<std::uint64_t> keys;
  std::vector<double> vals;
  for (int i = 0; i < 3000; ++i) {
    keys.push_back(rng.bounded(50));
    vals.push_back(rng.uniform());
  }
  SmallDomainWindowMax<double> scalar(50, 400, 0.25);
  SmallDomainWindowMax<double> batched(50, 400, 0.25);
  for (std::size_t i = 0; i < keys.size(); ++i) scalar.add(keys[i], vals[i]);
  for (std::size_t i = 0; i < keys.size(); i += 97) {
    const std::size_t m = std::min<std::size_t>(97, keys.size() - i);
    batched.add_batch(keys.data() + i, vals.data() + i, m);
  }
  EXPECT_EQ(scalar.processed(), batched.processed());
  for (const std::size_t q : {std::size_t{1}, std::size_t{8},
                              std::size_t{64}}) {
    auto lhs = scalar.query(q);
    auto rhs = batched.query(q);
    auto by_key = [](const auto& a, const auto& b) { return a.id < b.id; };
    std::sort(lhs.begin(), lhs.end(), by_key);
    std::sort(rhs.begin(), rhs.end(), by_key);
    ASSERT_EQ(lhs.size(), rhs.size()) << "q=" << q;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].id, rhs[i].id);
      EXPECT_EQ(lhs[i].val, rhs[i].val);
    }
  }
}

TEST(AddBatch, SmallDomainWindowBatchThrowsLikeScalar) {
  SmallDomainWindowMax<double> w(8, 100, 0.5);
  const std::uint64_t keys[3] = {1, 2, 99};  // third is out of domain
  const double vals[3] = {0.1, 0.2, 0.3};
  EXPECT_THROW(w.add_batch(keys, vals, 3), std::out_of_range);
  // The preceding in-domain items were ingested, exactly like scalar adds.
  EXPECT_EQ(w.processed(), 2u);
}
