// Kill-restore-replay: the durability loop closed end to end. Each cell
// drives one reservoir composition with periodic checkpoints, kills it
// at an injected fault (mid-maintenance crash, crash inside persist
// between temp-write and rename, or a torn snapshot write), restores the
// latest durable epoch into a fresh object, replays the stream tail, and
// asserts the final query() answer is the exact value multiset an
// uninterrupted golden run produces.
//
// Compiled into every build; the cells GTEST_SKIP unless the binary was
// built with -DQMAX_FAULT_INJECTION=ON (the CI crash-recovery job is).
#include "durability/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cache/lrfu_qmax.hpp"
#include "cache/lrfu_qmax_deamortized.hpp"
#include "common/fault.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/concurrent.hpp"
#include "qmax/exp_decay.hpp"
#include "qmax/invariants.hpp"
#include "qmax/qmax.hpp"
#include "qmax/sampled_qmax.hpp"
#include "qmax/sharded.hpp"
#include "qmax/sliding.hpp"
#include "qmax/time_sliding.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::ConcurrentQMax;
using qmax::ExpDecayQMax;
using qmax::QMax;
using qmax::SampledQMax;
using qmax::ShardedQMax;
using qmax::SlackQMax;
using qmax::TimeSlackQMax;
using qmax::cache::LrfuQMaxCache;
using qmax::cache::LrfuQMaxCacheDeamortized;
namespace durability = qmax::durability;
namespace fault = qmax::fault;

constexpr std::uint64_t kItems = 6'000;
constexpr std::uint64_t kCheckpointEvery = 512;

enum class Kill {
  kMaintenanceCrash,  // InjectedCrash from a maintenance-phase site
  kPersistCrash,      // InjectedCrash between temp-write and rename
  kTornShortWrite,    // snapshot truncated to half, still renamed
  kTornCorruptByte,   // one payload byte flipped, still renamed
  kTornDropRename,    // temp written and fsynced, rename never happens
};

[[nodiscard]] double val_at(std::uint64_t i) {
  const double phi = 0.6180339887498949;
  const double x = static_cast<double>(i + 1) * phi;
  return x - static_cast<double>(static_cast<std::uint64_t>(x));
}

[[nodiscard]] std::uint64_t key_at(std::uint64_t i) {
  return (i % 7 != 0) ? (i * i + 3) % 97 : 1'000'000 + i;
}

template <typename R>
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
fingerprint(const R& r) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& e : r.query()) {
    out.emplace_back(static_cast<std::uint64_t>(e.id),
                     std::bit_cast<std::uint64_t>(e.val));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct ScopedDir {
  explicit ScopedDir(const std::string& leaf) {
    path = std::filesystem::path(testing::TempDir()) / leaf;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::filesystem::path path;
};

struct FaultQuiesce {
  ~FaultQuiesce() { fault::disarm_all(); }
};

/// Fire the crash point exactly once, at its `hit`-th armed encounter.
void arm_crash_at_hit(std::uint64_t hit) {
  constexpr std::uint64_t kHuge = 1u << 30;
  fault::arm(fault::Site::kCrashPoint,
             {.period = kHuge, .phase = kHuge - hit, .limit = 1});
}

/// One grid cell. `make` builds a fresh, identically configured object
/// (heap so crash recovery can discard the dead one in place), `feed`
/// applies stream item i, `pos` reports how many items a restored object
/// already consumed, `print` fingerprints the final answer.
template <typename MakePtr, typename Feed, typename Pos, typename Print>
void run_kill_restore_replay(const std::string& cell, MakePtr make,
                             Feed feed, Pos pos, Print print, Kill kill,
                             std::uint64_t crash_hit) {
  SCOPED_TRACE(cell);
  FaultQuiesce quiesce;

  auto golden = make();
  for (std::uint64_t i = 0; i < kItems; ++i) feed(*golden, i);
  const auto want = print(*golden);

  ScopedDir dir(cell);
  std::optional<durability::SnapshotStore> store;
  store.emplace(dir.path, "cell", 4);
  auto obj = make();

  const bool torn = kill == Kill::kTornShortWrite ||
                    kill == Kill::kTornCorruptByte ||
                    kill == Kill::kTornDropRename;
  if (kill == Kill::kMaintenanceCrash) arm_crash_at_hit(crash_hit);
  if (torn) {
    // Every second persist is sabotaged; the cell kills the process
    // right after the first sabotage so the newest on-disk state is the
    // damaged one and recovery must cope with it.
    const auto mode = static_cast<std::uint64_t>(
        kill == Kill::kTornShortWrite    ? 0
        : kill == Kill::kTornCorruptByte ? 1
                                         : 2);
    fault::arm(fault::Site::kSnapshotTornWrite,
               {.period = 2, .phase = 1, .magnitude = mode});
  }

  const std::uint64_t rejections_before =
      durability::store_counters().restore_rejections.load();
  bool killed = false;
  std::uint64_t checkpoints = 0;

  auto recover = [&] {
    killed = true;
    fault::disarm_all();
    obj = make();                       // the dead process's heap is gone
    store.emplace(dir.path, "cell", 4); // recovery re-opens the stream
    (void)durability::warm_restart(*store, *obj);
    const std::uint64_t at = pos(*obj);
    EXPECT_LE(at, kItems);
    return at;
  };

  std::uint64_t i = 0;
  while (i < kItems) {
    try {
      feed(*obj, i);
      ++i;
      if (i % kCheckpointEvery == 0) {
        ++checkpoints;
        if (kill == Kill::kPersistCrash && checkpoints == 3) {
          fault::arm(fault::Site::kCrashPoint, {.period = 1, .limit = 1});
        }
        const std::uint64_t fires_before =
            fault::fires(fault::Site::kSnapshotTornWrite);
        durability::checkpoint(*store, *obj);
        if (torn && !killed &&
            fault::fires(fault::Site::kSnapshotTornWrite) > fires_before) {
          i = recover();  // kill immediately after the sabotaged persist
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    } catch (const fault::InjectedCrash&) {
      i = recover();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  EXPECT_TRUE(killed) << "fault never fired; the cell tested nothing";
  if (kill == Kill::kMaintenanceCrash || kill == Kill::kPersistCrash) {
    EXPECT_EQ(fault::fires(fault::Site::kCrashPoint), 1u);
  }
  if (kill == Kill::kTornShortWrite || kill == Kill::kTornCorruptByte) {
    // The newest epoch was damaged, so recovery must have rejected it
    // before falling back.
    EXPECT_GT(durability::store_counters().restore_rejections.load(),
              rejections_before);
  }
  EXPECT_EQ(print(*obj), want)
      << "restored+replayed answer diverged from the uninterrupted run";
}

constexpr Kill kAllKills[] = {Kill::kMaintenanceCrash, Kill::kPersistCrash,
                              Kill::kTornShortWrite, Kill::kTornCorruptByte,
                              Kill::kTornDropRename};

[[nodiscard]] std::string kill_name(Kill k) {
  switch (k) {
    case Kill::kMaintenanceCrash: return "maintenance_crash";
    case Kill::kPersistCrash: return "persist_crash";
    case Kill::kTornShortWrite: return "torn_short_write";
    case Kill::kTornCorruptByte: return "torn_corrupt_byte";
    case Kill::kTornDropRename: return "torn_drop_rename";
  }
  return "?";
}

template <typename MakePtr>
void reservoir_grid(const std::string& variant, MakePtr make,
                    std::uint64_t crash_hit) {
  using T = typename decltype(make())::element_type;
  for (const Kill kill : kAllKills) {
    run_kill_restore_replay(
        variant + "/" + kill_name(kill), make,
        [](T& r, std::uint64_t i) { r.add(i, val_at(i)); },
        [](const T& r) { return r.processed(); },
        [](const T& r) { return fingerprint(r); }, kill, crash_hit);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecovery, QMax) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  reservoir_grid("qmax", [] { return std::make_unique<QMax<>>(64, 0.25); },
                 12);
}

TEST(CrashRecovery, QMaxTinyGamma) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  reservoir_grid("qmax_tiny_gamma",
                 [] { return std::make_unique<QMax<>>(64, 0.05); }, 20);
}

TEST(CrashRecovery, AmortizedQMax) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  reservoir_grid("amortized",
                 [] { return std::make_unique<AmortizedQMax<>>(64, 0.25); },
                 6);
}

TEST(CrashRecovery, SampledQMax) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  reservoir_grid("sampled",
                 [] { return std::make_unique<SampledQMax<>>(256, 0.5, 64); },
                 3);
}

TEST(CrashRecovery, ExpDecayQMax) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  reservoir_grid(
      "exp_decay",
      [] { return std::make_unique<ExpDecayQMax<>>(64, 0.999, 0.25); }, 8);
}

TEST(CrashRecovery, SlackQMaxLazy) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  using SW = SlackQMax<QMax<>>;
  for (const Kill kill : kAllKills) {
    run_kill_restore_replay(
        "slack_lazy/" + kill_name(kill),
        [] {
          return std::make_unique<SW>(
              512, 0.1, [] { return QMax<>(32, 0.25); },
              typename SW::Options{.levels = 2, .lazy = true});
        },
        [](SW& r, std::uint64_t i) { r.add(i, val_at(i)); },
        [](const SW& r) { return r.processed(); },
        [](const SW& r) { return fingerprint(r); }, kill, 20);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecovery, TimeSlackQMax) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  using TW = TimeSlackQMax<QMax<>>;
  for (const Kill kill : kAllKills) {
    run_kill_restore_replay(
        "time_slack/" + kill_name(kill),
        [] {
          return std::make_unique<TW>(256, 0.125,
                                      [] { return QMax<>(32, 0.25); });
        },
        [](TW& r, std::uint64_t i) { r.add(i, val_at(i), i / 4); },
        [](const TW& r) { return r.processed(); },
        [](const TW& r) { return fingerprint(r); }, kill, 20);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecovery, ShardedQMax) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  using SH = ShardedQMax<>;
  static constexpr std::size_t kShards = 4;
  for (const Kill kill : kAllKills) {
    run_kill_restore_replay(
        "sharded/" + kill_name(kill),
        [] {
          return std::make_unique<SH>(kShards, 64,
                                      typename SH::Options{.gamma = 0.25},
                                      true);
        },
        [](SH& r, std::uint64_t i) { r.add(i % kShards, i, val_at(i)); },
        [](const SH& r) { return r.processed(); },
        [](const SH& r) { return fingerprint(r); }, kill, 25);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecovery, ConcurrentQMax) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  using CQ = ConcurrentQMax<>;
  // Tiny buffers so checkpoints land with staged items in flight; the
  // quiesced snapshot drains them, and processed() (base counters folded
  // on restore) tells the replay where to resume.
  for (const Kill kill : kAllKills) {
    run_kill_restore_replay(
        "concurrent/" + kill_name(kill),
        [] {
          return std::make_unique<CQ>(64, typename CQ::Options{.gamma = 0.25},
                                      48);
        },
        [](CQ& r, std::uint64_t i) { r.add(i, val_at(i)); },
        [](const CQ& r) { return r.processed(); },
        [](const CQ& r) { return fingerprint(r); }, kill, 25);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecovery, LrfuQMaxCache) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  using C = LrfuQMaxCache<>;
  for (const Kill kill : kAllKills) {
    run_kill_restore_replay(
        "lrfu/" + kill_name(kill),
        [] { return std::make_unique<C>(64, 0.99, 0.25); },
        [](C& c, std::uint64_t i) { c.access(key_at(i)); },
        [](const C& c) { return c.accesses(); },
        [](const C& c) {
          auto ranked = const_cast<C&>(c).ranked_keys();
          return std::tuple(c.hits(), c.accesses(), ranked);
        },
        kill, 20);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecovery, LrfuQMaxCacheDeamortized) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without QMAX_FAULT_INJECTION";
  using C = LrfuQMaxCacheDeamortized<>;
  for (const Kill kill : kAllKills) {
    run_kill_restore_replay(
        "lrfu_deamortized/" + kill_name(kill),
        [] { return std::make_unique<C>(64, 0.99, 0.25); },
        [](C& c, std::uint64_t i) { c.access(key_at(i)); },
        [](const C& c) { return c.accesses(); },
        [](const C& c) {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> cached;
          for (std::uint64_t k = 0; k < 97; ++k) {
            if (c.contains(k)) {
              cached.emplace_back(k,
                                  std::bit_cast<std::uint64_t>(c.score(k)));
            }
          }
          return std::tuple(c.hits(), c.accesses(), c.size(), cached);
        },
        kill, 20);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
