// Property sweep: the golden q-MAX invariant — after any prefix of any
// stream, query() returns exactly the multiset of the q largest values —
// checked over a (q, γ, stream-shape) grid for the deamortized reservoir.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/zipf.hpp"
#include "qmax/qmax.hpp"

namespace {

using qmax::QMax;
using qmax::common::Xoshiro256;
using qmax::common::ZipfGenerator;

enum class Shape {
  kUniform,
  kAscending,
  kDescending,
  kSawtooth,
  kConstant,
  kZipf,
  kTwoPhase  // low regime then high regime (threshold shock)
};

std::string shape_name(Shape s) {
  switch (s) {
    case Shape::kUniform: return "Uniform";
    case Shape::kAscending: return "Ascending";
    case Shape::kDescending: return "Descending";
    case Shape::kSawtooth: return "Sawtooth";
    case Shape::kConstant: return "Constant";
    case Shape::kZipf: return "Zipf";
    case Shape::kTwoPhase: return "TwoPhase";
  }
  return "?";
}

struct Param {
  std::size_t q;
  double gamma;
  Shape shape;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  // Built with append rather than operator+ chains: GCC 12's -Wrestrict
  // false-positives on temporary-string concatenation under -O3.
  const auto& p = info.param;
  std::string name = "q";
  name += std::to_string(p.q);
  name += "_g";
  name += std::to_string(int(std::round(p.gamma * 1000)));
  name += "_";
  name += shape_name(p.shape);
  return name;
}

double next_value(Shape shape, std::size_t i, std::size_t n, Xoshiro256& rng,
                  ZipfGenerator& zipf) {
  switch (shape) {
    case Shape::kUniform: return rng.uniform() * 1e6;
    case Shape::kAscending: return static_cast<double>(i);
    case Shape::kDescending: return static_cast<double>(n - i);
    case Shape::kSawtooth: return static_cast<double>(i % 523);
    case Shape::kConstant: return 17.0;
    case Shape::kZipf: return static_cast<double>(zipf(rng));
    case Shape::kTwoPhase:
      return i < n / 2 ? rng.uniform() : 1e6 + rng.uniform();
  }
  return 0.0;
}

class QMaxGrid : public ::testing::TestWithParam<Param> {};

TEST_P(QMaxGrid, PrefixInvariant) {
  const auto p = GetParam();
  const std::size_t n = 12'000;
  QMax<> r(p.q, p.gamma);
  Xoshiro256 rng(p.q * 1000 + static_cast<std::uint64_t>(p.gamma * 100) +
                 static_cast<std::uint64_t>(p.shape));
  ZipfGenerator zipf(5'000, 1.1);

  std::vector<double> all;
  all.reserve(n);
  // Check the invariant at several prefixes, including awkward ones that
  // land mid-iteration.
  const std::size_t checkpoints[] = {1,     p.q / 2 + 1, p.q + 3,
                                     n / 3, n / 2 + 7,   n};
  std::size_t next_cp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = next_value(p.shape, i, n, rng, zipf);
    all.push_back(v);
    r.add(i, v);
    while (next_cp < std::size(checkpoints) &&
           i + 1 == checkpoints[next_cp]) {
      ++next_cp;
      std::vector<double> got;
      for (const auto& e : r.query()) got.push_back(e.val);
      std::sort(got.begin(), got.end(), std::greater<>());
      std::vector<double> expect = all;
      std::sort(expect.begin(), expect.end(), std::greater<>());
      if (expect.size() > p.q) expect.resize(p.q);
      ASSERT_EQ(got, expect) << "prefix " << (i + 1);
    }
  }
  // Space bound from Theorem 1 (g rounds up, hence the +2 slack).
  EXPECT_LE(r.capacity(),
            static_cast<std::size_t>(std::ceil(p.q * (1.0 + p.gamma))) + 2);
}

constexpr Shape kShapes[] = {Shape::kUniform,  Shape::kAscending,
                             Shape::kDescending, Shape::kSawtooth,
                             Shape::kConstant, Shape::kZipf,
                             Shape::kTwoPhase};

std::vector<Param> make_grid() {
  std::vector<Param> grid;
  for (std::size_t q : {1, 2, 7, 64, 500}) {
    for (double gamma : {0.01, 0.1, 0.5, 2.0}) {
      for (Shape s : kShapes) grid.push_back(Param{q, gamma, s});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, QMaxGrid, ::testing::ValuesIn(make_grid()),
                         param_name);

}  // namespace
