// Trace-replay differential suite for the ReservoirCore refactor.
//
// Two complementary pins on "the refactor changed nothing":
//
//  1. Live differentials against seed_reference.hpp — frozen copies of the
//     pre-refactor implementations. Every add()/access() return value, the
//     full Ψ trajectory (bit-compared), periodic query results, and the
//     bookkeeping counters must match item by item, on adversarial traces
//     (NaN-laced, heavily tied, monotone-increasing, duplicate-keyed).
//  2. Burned-in behavior hashes ("goldens") recorded from the seed build:
//     a FNV-1a fold over every externally observable event of a scripted
//     run. These freeze today's behavior against drift in *both* the
//     production code and the reference copies. Regenerate with
//     QMAX_PRINT_GOLDENS=1 ./qmax_tests --gtest_filter='CoreDifferential.Golden*'
//     only when a behavior change is intentional.
//
// The suite also owns the canonical reset() contract (PR 1 fixed
// QMax::reset() forgetting late_selections_; this generalizes that audit):
// for every variant, a reset() instance must be behaviorally
// indistinguishable from a freshly constructed one on any subsequent trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "cache/lrfu_exact.hpp"
#include "cache/lrfu_qmax.hpp"
#include "cache/lrfu_qmax_deamortized.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/exp_decay.hpp"
#include "qmax/qmax.hpp"
#include "qmax/qmin.hpp"
#include "qmax/sampled_qmax.hpp"
#include "qmax/sharded.hpp"
#include "qmax/sliding.hpp"
#include "qmax/small_domain_window.hpp"
#include "qmax/time_sliding.hpp"
#include "seed_reference.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::ExpDecayQMax;
using qmax::QMax;
using qmax::QMin;
using qmax::SlackQMax;
using qmax::SmallDomainWindowMax;
using qmax::TimeSlackQMax;

// ---------------------------------------------------------------------
// Deterministic trace machinery (no std::rand, no platform RNG).
// ---------------------------------------------------------------------

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Adversarial double-valued trace: uniform noise, heavy ties (values
/// quantized to 16 levels), monotone ramps (every selection must keep up
/// with a rising Ψ), NaN poison, zeros and negatives. All values are exact
/// small integers scaled by powers of two, so arithmetic is reproducible
/// bit-for-bit on any IEEE-754 platform.
std::vector<double> adversarial_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix64(s);
    switch (r % 16) {
      case 0:  // tie-heavy plateau
        v[i] = static_cast<double>(r % 16) * 0.25;
        break;
      case 1:  // monotone ramp segment
        v[i] = static_cast<double>(i);
        break;
      case 2:
        v[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 3:
        v[i] = 0.0;
        break;
      case 4:
        v[i] = -static_cast<double>(r % 1024);
        break;
      default:  // exact-integer uniform noise
        v[i] = static_cast<double>(r % (1ull << 40));
        break;
    }
  }
  return v;
}

/// Positive finite weights for the decay/cache variants (their admission
/// guard drops non-positive values before anything interesting happens).
std::vector<double> positive_weights(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(splitmix64(s) % 65536 + 1);
  }
  return v;
}

/// Skewed key stream for the caches: ~80% of references hit a hot set.
std::vector<std::uint64_t> skewed_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t hot, std::uint64_t cold) {
  std::vector<std::uint64_t> k(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix64(s);
    k[i] = (r % 5 != 0) ? (r >> 32) % hot : hot + (r >> 32) % cold;
  }
  return k;
}

// ---------------------------------------------------------------------
// Behavior hashing (FNV-1a over every observable event).
// ---------------------------------------------------------------------

struct Hasher {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void b(bool x) { u64(x ? 1 : 0); }
  void d(double x) { u64(std::bit_cast<std::uint64_t>(x)); }
};

template <typename EntryT>
void hash_query(Hasher& hh, std::vector<EntryT> out) {
  std::sort(out.begin(), out.end(), [](const EntryT& a, const EntryT& b) {
    if (a.val != b.val) return a.val < b.val;
    return a.id < b.id;
  });
  hh.u64(out.size());
  for (const EntryT& e : out) {
    hh.u64(static_cast<std::uint64_t>(e.id));
    if constexpr (std::is_floating_point_v<decltype(e.val)>) {
      hh.d(e.val);
    } else {
      hh.u64(static_cast<std::uint64_t>(e.val));
    }
  }
}

// ---------------------------------------------------------------------
// Per-variant drive functions: run a scripted trace, fold every
// observable into a hash. Reused by the golden tests (hash vs constant)
// and the reset-equals-fresh tests (hash(reset) vs hash(fresh)).
// ---------------------------------------------------------------------

template <typename R>
std::uint64_t drive_reservoir(R& r, const std::vector<double>& vals) {
  Hasher hh;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    hh.b(r.add(i, vals[i]));
    hh.d(r.threshold());
    if (i % 509 == 0) hash_query(hh, r.query());
  }
  hash_query(hh, r.query());
  hh.u64(r.processed());
  hh.u64(r.live_count());
  return hh.h;
}

template <typename R>
std::uint64_t drive_qmin(R& r, const std::vector<double>& vals) {
  Hasher hh;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    hh.b(r.add(i, vals[i]));
    hh.d(r.threshold());
    if (i % 509 == 0) hash_query(hh, r.query());
  }
  hash_query(hh, r.query());
  hh.u64(r.live_count());
  return hh.h;
}

template <typename W>
std::uint64_t drive_window(W& w, const std::vector<double>& vals) {
  Hasher hh;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    w.add(i, vals[i]);
    if (i % 701 == 0) {
      hash_query(hh, w.query());
      hh.u64(w.last_coverage());
    }
  }
  hash_query(hh, w.query());
  hh.u64(w.last_coverage());
  hh.u64(w.live_count());
  return hh.h;
}

template <typename W>
std::uint64_t drive_time_window(W& w, const std::vector<double>& vals,
                                std::uint64_t seed) {
  Hasher hh;
  std::uint64_t s = seed;
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    now += (i % 97 == 0) ? 400 : splitmix64(s) % 3;
    hh.b(w.add(i, vals[i], now));
    if (i % 701 == 0) {
      hash_query(hh, w.query());
      hh.u64(w.last_coverage());
    }
  }
  hash_query(hh, w.query());
  hh.u64(w.live_count());
  hh.u64(w.now());
  return hh.h;
}

template <typename W>
std::uint64_t drive_small_domain(W& w, const std::vector<double>& vals,
                                 std::uint64_t domain) {
  Hasher hh;
  std::uint64_t s = 77;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    w.add(splitmix64(s) % domain, vals[i]);
    if (i % 701 == 0) hash_query(hh, w.query(8));
  }
  hash_query(hh, w.query(8));
  hh.u64(w.processed());
  return hh.h;
}

template <typename C>
std::uint64_t drive_cache(C& c, const std::vector<std::uint64_t>& keys) {
  Hasher hh;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    hh.b(c.access(keys[i]));
    if (i % 701 == 0) hh.u64(c.size());
  }
  hh.u64(c.size());
  hh.u64(c.hits());
  return hh.h;
}

std::uint64_t drive_exp_decay(ExpDecayQMax<>& r,
                              const std::vector<double>& vals) {
  Hasher hh;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    hh.b(r.add(i, vals[i]));
    if (i % 701 == 0) hash_query(hh, r.query_log());
  }
  hash_query(hh, r.query_log());
  hh.u64(r.processed());
  hh.u64(r.live_count());
  return hh.h;
}

// ---------------------------------------------------------------------
// Part 1 — live differentials vs. the frozen seed implementations.
// ---------------------------------------------------------------------

TEST(CoreDifferential, QMaxMatchesSeedReferenceOnAdversarialTraces) {
  struct Config {
    std::size_t q;
    double gamma;
    unsigned budget;
  };
  for (const Config cfg : {Config{64, 0.25, 4}, Config{100, 1.0, 4},
                           Config{7, 0.05, 4}, Config{64, 0.25, 0},
                           Config{1, 2.0, 4}}) {
    QMax<> neu(cfg.q, QMax<>::Options{.gamma = cfg.gamma,
                                      .budget_factor = cfg.budget});
    seedref::QMax<> ref(cfg.q, cfg.gamma, cfg.budget);
    const auto vals = adversarial_doubles(40'000, 11 + cfg.q);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      ASSERT_EQ(neu.add(i, vals[i]), ref.add(i, vals[i]))
          << "q=" << cfg.q << " step " << i;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(neu.threshold()),
                std::bit_cast<std::uint64_t>(ref.threshold()))
          << "q=" << cfg.q << " step " << i;
      if (i % 997 == 0) {
        Hasher a, b;
        hash_query(a, neu.query());
        hash_query(b, ref.query());
        ASSERT_EQ(a.h, b.h) << "q=" << cfg.q << " step " << i;
      }
    }
    EXPECT_EQ(neu.processed(), ref.processed());
    EXPECT_EQ(neu.admitted(), ref.admitted());
    EXPECT_EQ(neu.live_count(), ref.live_count());
    EXPECT_EQ(neu.late_selections(), ref.late_selections());
    Hasher a, b;
    hash_query(a, neu.query());
    hash_query(b, ref.query());
    EXPECT_EQ(a.h, b.h);
  }
}

TEST(CoreDifferential, QMaxBatchMatchesSeedReferenceScalar) {
  // The batched path must be indistinguishable from the *seed* scalar
  // implementation, not merely from today's scalar path.
  QMax<> neu(128, 0.25);
  seedref::QMax<> ref(128, 0.25);
  const auto vals = adversarial_doubles(60'000, 99);
  std::vector<std::uint64_t> ids(vals.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;

  std::uint64_t s = 5;
  std::size_t i = 0;
  while (i < vals.size()) {
    const std::size_t run =
        std::min<std::size_t>(1 + splitmix64(s) % 300, vals.size() - i);
    std::size_t ref_admitted = 0;
    for (std::size_t j = i; j < i + run; ++j) {
      ref_admitted += static_cast<std::size_t>(ref.add(ids[j], vals[j]));
    }
    ASSERT_EQ(neu.add_batch(ids.data() + i, vals.data() + i, run),
              ref_admitted)
        << "batch at " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(neu.threshold()),
              std::bit_cast<std::uint64_t>(ref.threshold()))
        << "batch at " << i;
    i += run;
  }
  EXPECT_EQ(neu.processed(), ref.processed());
  EXPECT_EQ(neu.admitted(), ref.admitted());
  Hasher a, b;
  hash_query(a, neu.query());
  hash_query(b, ref.query());
  EXPECT_EQ(a.h, b.h);
}

TEST(CoreDifferential, AmortizedMatchesSeedReferenceOnAdversarialTraces) {
  for (const auto& [q, gamma] : std::vector<std::pair<std::size_t, double>>{
           {64, 0.25}, {100, 1.0}, {7, 0.05}, {1, 2.0}}) {
    AmortizedQMax<> neu(q, gamma);
    seedref::AmortizedQMax<> ref(q, gamma);
    const auto vals = adversarial_doubles(40'000, 23 + q);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      ASSERT_EQ(neu.add(i, vals[i]), ref.add(i, vals[i]))
          << "q=" << q << " step " << i;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(neu.threshold()),
                std::bit_cast<std::uint64_t>(ref.threshold()))
          << "q=" << q << " step " << i;
      if (i % 997 == 0) {
        Hasher a, b;
        hash_query(a, neu.query());
        hash_query(b, ref.query());
        ASSERT_EQ(a.h, b.h) << "q=" << q << " step " << i;
      }
    }
    EXPECT_EQ(neu.processed(), ref.processed());
    EXPECT_EQ(neu.admitted(), ref.admitted());
    EXPECT_EQ(neu.live_count(), ref.live_count());
  }
}

TEST(CoreDifferential, ExpDecayMatchesSeedReference) {
  ExpDecayQMax<> neu(32, 0.9, 0.25);
  seedref::ExpDecayQMax<> ref(32, 0.9, 0.25);
  // Positive weights with invalid values mixed in: both sides must agree
  // on which items consume a time index without being admitted.
  auto vals = positive_weights(30'000, 41);
  std::uint64_t s = 17;
  for (auto& v : vals) {
    switch (splitmix64(s) % 32) {
      case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v = 0.0; break;
      case 2: v = -1.0; break;
      case 3: v = std::numeric_limits<double>::infinity(); break;
      default: break;
    }
  }
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ASSERT_EQ(neu.add(i, vals[i]), ref.add(i, vals[i])) << "step " << i;
    if (i % 997 == 0) {
      Hasher a, b;
      hash_query(a, neu.query_log());
      hash_query(b, ref.query_log());
      ASSERT_EQ(a.h, b.h) << "step " << i;
    }
  }
  EXPECT_EQ(neu.processed(), ref.processed());
  Hasher a, b;
  hash_query(a, neu.query_log());
  hash_query(b, ref.query_log());
  EXPECT_EQ(a.h, b.h);
}

TEST(CoreDifferential, LrfuAmortizedMatchesSeedReference) {
  qmax::cache::LrfuQMaxCache<> neu(64, 0.99, 0.25);
  seedref::LrfuQMaxCache<> ref(64, 0.99, 0.25);
  const auto keys = skewed_keys(40'000, 7, 48, 4096);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(neu.access(keys[i]), ref.access(keys[i])) << "step " << i;
    if (i % 499 == 0) {
      ASSERT_EQ(neu.size(), ref.size()) << "step " << i;
    }
  }
  EXPECT_EQ(neu.hits(), ref.hits());
  auto a = neu.ranked_keys();
  auto b = ref.ranked_keys();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].second),
              std::bit_cast<std::uint64_t>(b[i].second))
        << "rank " << i;
  }
}

TEST(CoreDifferential, LrfuDeamortizedMatchesSeedReference) {
  qmax::cache::LrfuQMaxCacheDeamortized<> neu(64, 0.99, 0.25);
  seedref::LrfuQMaxCacheDeamortized<> ref(64, 0.99, 0.25);
  const auto keys = skewed_keys(40'000, 13, 48, 4096);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(neu.access(keys[i]), ref.access(keys[i])) << "step " << i;
    if (i % 499 == 0) {
      ASSERT_EQ(neu.size(), ref.size()) << "step " << i;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(neu.score(keys[i])),
                std::bit_cast<std::uint64_t>(ref.score(keys[i])))
          << "step " << i;
    }
  }
  EXPECT_EQ(neu.hits(), ref.hits());
  EXPECT_EQ(neu.size(), ref.size());
}

// ---------------------------------------------------------------------
// Part 2 — burned-in behavior hashes recorded from the seed build.
// ---------------------------------------------------------------------

constexpr bool kPrintGoldens =
#ifdef QMAX_PRINT_GOLDENS_COMPILED
    true;
#else
    false;
#endif

void expect_golden(const char* name, std::uint64_t got,
                   std::uint64_t expected) {
  if (kPrintGoldens || std::getenv("QMAX_PRINT_GOLDENS") != nullptr) {
    printf("GOLDEN %s = 0x%016llxull\n", name,
           static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, expected)
      << name
      << ": behavior diverged from the recorded seed golden. If this "
         "change is intentional, regenerate with QMAX_PRINT_GOLDENS=1.";
}

TEST(CoreDifferential, GoldenQMax) {
  QMax<> r(64, 0.25);
  const auto vals = adversarial_doubles(20'000, 2024);
  expect_golden("qmax_q64_g25", drive_reservoir(r, vals),
                0x68dc42ac0da28aeeull);

  QMax<> tiny(3, 0.5);
  expect_golden("qmax_q3_g50", drive_reservoir(tiny, vals),
                0x13cd8ad089108707ull);
}

TEST(CoreDifferential, GoldenAmortized) {
  AmortizedQMax<> r(64, 0.25);
  const auto vals = adversarial_doubles(20'000, 2025);
  expect_golden("amortized_q64_g25", drive_reservoir(r, vals),
                0x9710e8b661b27d1bull);
}

TEST(CoreDifferential, GoldenQMin) {
  QMin<QMax<>> r(64, 0.25);
  const auto vals = adversarial_doubles(20'000, 2026);
  expect_golden("qmin_q64_g25", drive_qmin(r, vals), 0xffcf590c95e618a9ull);
}

TEST(CoreDifferential, GoldenSlackWindows) {
  const auto vals = adversarial_doubles(30'000, 2027);
  {
    auto w = qmax::make_basic_slack_qmax<QMax<>>(
        4096, 0.125, [] { return QMax<>(16, 0.5); });
    expect_golden("slack_basic", drive_window(w, vals),
                  0x6d74561d29a116a9ull);
  }
  {
    auto w = qmax::make_hier_slack_qmax<QMax<>>(
        4096, 0.125, 3, [] { return QMax<>(16, 0.5); });
    expect_golden("slack_hier3", drive_window(w, vals),
                  0x1253a23d249db767ull);
  }
  {
    auto w = qmax::make_lazy_slack_qmax<QMax<>>(
        4096, 0.125, 3, [] { return QMax<>(16, 0.5); });
    expect_golden("slack_lazy3", drive_window(w, vals),
                  0xbbe0bd04152e163dull);
  }
}

TEST(CoreDifferential, GoldenTimeSlack) {
  TimeSlackQMax<QMax<>> w(1000, 0.25, [] { return QMax<>(16, 0.5); });
  const auto vals = adversarial_doubles(20'000, 2028);
  expect_golden("time_slack", drive_time_window(w, vals, 3),
                0x8ec4e0790e8e3b64ull);
}

TEST(CoreDifferential, GoldenSmallDomainWindow) {
  SmallDomainWindowMax<double> w(256, 5000, 0.1);
  const auto vals = adversarial_doubles(20'000, 2029);
  expect_golden("small_domain", drive_small_domain(w, vals, 256),
                0x83646b7ab4a1cab9ull);
}

TEST(CoreDifferential, GoldenExpDecay) {
  // Decay 0.5 keeps the log-domain shift at exact multiples of log(2);
  // the libm calls (log/exp) are identical on both sides of the refactor,
  // so this hash is stable wherever the tier-1 suite runs.
  ExpDecayQMax<> r(32, 0.5, 0.25);
  const auto vals = positive_weights(20'000, 2030);
  expect_golden("exp_decay", drive_exp_decay(r, vals),
                0x72e88c96a7e7b34eull);
}

TEST(CoreDifferential, GoldenLrfuCaches) {
  const auto keys = skewed_keys(30'000, 2031, 48, 4096);
  {
    qmax::cache::LrfuQMaxCache<> c(64, 0.99, 0.25);
    expect_golden("lrfu_amortized", drive_cache(c, keys),
                  0x183f5e75eac4e665ull);
  }
  {
    qmax::cache::LrfuQMaxCacheDeamortized<> c(64, 0.99, 0.25);
    expect_golden("lrfu_deamortized", drive_cache(c, keys),
                  0xf4fdd2335bbec290ull);
  }
  {
    qmax::cache::LrfuCache<> c(64, 0.99);
    expect_golden("lrfu_exact", drive_cache(c, keys),
                  0xaba37cababc001c8ull);
  }
}

// ---------------------------------------------------------------------
// Part 3 — canonical reset(): a reset instance must equal a fresh one.
// ---------------------------------------------------------------------

// Drive `dirty` through a warm-up trace, reset it, then compare its full
// observable behavior on a second trace against a never-used instance.
template <typename Make, typename Drive>
void expect_reset_equals_fresh(Make make, Drive drive) {
  auto dirty = make();
  auto fresh = make();
  const auto warmup = adversarial_doubles(9'000, 555);
  (void)drive(dirty, warmup);
  dirty.reset();
  const auto probe = adversarial_doubles(9'000, 556);
  EXPECT_EQ(drive(dirty, probe), drive(fresh, probe))
      << "reset() state differs from a freshly constructed instance";
}

TEST(CoreDifferential, ResetEqualsFreshQMax) {
  expect_reset_equals_fresh(
      [] { return QMax<>(32, 0.25); },
      [](QMax<>& r, const std::vector<double>& v) {
        Hasher hh;
        hh.u64(drive_reservoir(r, v));
        hh.u64(r.admitted());
        hh.u64(r.late_selections());
        return hh.h;
      });
  // budget_factor = 0 starves the selection so late_selections_ becomes
  // nonzero — the exact field the PR 1 bug left dangling across reset().
  expect_reset_equals_fresh(
      [] { return QMax<>(32, QMax<>::Options{.gamma = 0.5,
                                             .budget_factor = 0}); },
      [](QMax<>& r, const std::vector<double>& v) {
        Hasher hh;
        hh.u64(drive_reservoir(r, v));
        hh.u64(r.admitted());
        hh.u64(r.late_selections());
        return hh.h;
      });
}

TEST(CoreDifferential, ResetEqualsFreshAmortized) {
  expect_reset_equals_fresh(
      [] { return AmortizedQMax<>(32, 0.25); },
      [](AmortizedQMax<>& r, const std::vector<double>& v) {
        Hasher hh;
        hh.u64(drive_reservoir(r, v));
        hh.u64(r.admitted());
        return hh.h;
      });
}

TEST(CoreDifferential, ResetEqualsFreshQMin) {
  expect_reset_equals_fresh(
      [] { return QMin<QMax<>>(32, 0.25); },
      [](QMin<QMax<>>& r, const std::vector<double>& v) {
        return drive_qmin(r, v);
      });
}

TEST(CoreDifferential, ResetEqualsFreshExpDecay) {
  expect_reset_equals_fresh(
      [] { return ExpDecayQMax<>(32, 0.9, 0.25); },
      [](ExpDecayQMax<>& r, const std::vector<double>& v) {
        std::vector<double> pos(v.size());
        for (std::size_t i = 0; i < v.size(); ++i) {
          pos[i] = std::abs(v[i]) + 1.0;
        }
        return drive_exp_decay(r, pos);
      });
}

TEST(CoreDifferential, ResetEqualsFreshSlackWindows) {
  for (std::size_t levels : {std::size_t{1}, std::size_t{3}}) {
    for (bool lazy : {false, true}) {
      if (lazy && levels == 1) continue;
      expect_reset_equals_fresh(
          [&] {
            return SlackQMax<QMax<>>(
                2048, 0.125, [] { return QMax<>(8, 0.5); },
                typename SlackQMax<QMax<>>::Options{.levels = levels,
                                                    .lazy = lazy});
          },
          [](SlackQMax<QMax<>>& w, const std::vector<double>& v) {
            return drive_window(w, v);
          });
    }
  }
}

TEST(CoreDifferential, ResetEqualsFreshTimeSlack) {
  expect_reset_equals_fresh(
      [] {
        return TimeSlackQMax<QMax<>>(1000, 0.25,
                                     [] { return QMax<>(8, 0.5); });
      },
      [](TimeSlackQMax<QMax<>>& w, const std::vector<double>& v) {
        return drive_time_window(w, v, 9);
      });
}

TEST(CoreDifferential, ResetEqualsFreshSmallDomain) {
  expect_reset_equals_fresh(
      [] { return SmallDomainWindowMax<double>(128, 3000, 0.1); },
      [](SmallDomainWindowMax<double>& w, const std::vector<double>& v) {
        return drive_small_domain(w, v, 128);
      });
}

TEST(CoreDifferential, ResetEqualsFreshLrfuCaches) {
  const auto drive_keys = [](auto& c, const std::vector<double>& v) {
    std::vector<std::uint64_t> keys(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      keys[i] = std::bit_cast<std::uint64_t>(v[i]) % 512;
    }
    return drive_cache(c, keys);
  };
  expect_reset_equals_fresh(
      [] { return qmax::cache::LrfuQMaxCache<>(32, 0.99, 0.25); },
      drive_keys);
  expect_reset_equals_fresh(
      [] { return qmax::cache::LrfuQMaxCacheDeamortized<>(32, 0.99, 0.25); },
      drive_keys);
  expect_reset_equals_fresh([] { return qmax::cache::LrfuCache<>(32, 0.99); },
                            drive_keys);
}

// State added after PR 4 that reset() must also clear: the sampled
// policy's RNG stream and pass/fallback counters, the batch screen
// governor's mode and window, and the externally folded Ψ floor.

TEST(CoreDifferential, ResetEqualsFreshSampled) {
  expect_reset_equals_fresh(
      [] { return qmax::SampledQMax<>(128, 0.5, 48); },
      [](qmax::SampledQMax<>& r, const std::vector<double>& v) {
        Hasher hh;
        hh.u64(drive_reservoir(r, v));
        // The RNG must restart from the seed and the counters from zero,
        // or the pass/fallback trajectory diverges from a fresh instance.
        hh.u64(r.sampled_passes());
        hh.u64(r.exact_fallbacks());
        return hh.h;
      });
}

TEST(CoreDifferential, ResetEqualsFreshGovernorAndFloor) {
  expect_reset_equals_fresh(
      [] { return QMax<>(32, 0.25); },
      [](QMax<>& r, const std::vector<double>& v) {
        // Mid-trace floor folds leave ext_floor_ raised; batch entry
        // spans flip the screen governor — both must vanish on reset.
        r.raise_threshold_floor(0.75);
        Hasher hh;
        std::vector<std::uint64_t> ids(v.size());
        for (std::size_t i = 0; i < v.size(); ++i) ids[i] = i;
        constexpr std::size_t kChunk = 256;
        for (std::size_t lo = 0; lo < v.size(); lo += kChunk) {
          const std::size_t n = std::min(kChunk, v.size() - lo);
          hh.u64(r.add_batch(ids.data() + lo, v.data() + lo, n));
          hh.d(r.threshold());
        }
        hash_query(hh, r.query());
        hh.u64(r.admitted());
        hh.d(r.external_floor());
        return hh.h;
      });
}

TEST(CoreDifferential, ResetEqualsFreshSharded) {
  expect_reset_equals_fresh(
      [] {
        return qmax::ShardedQMax<>(4, 32,
                                   typename qmax::ShardedQMax<>::Options{
                                       .gamma = 0.25},
                                   true);
      },
      [](qmax::ShardedQMax<>& r, const std::vector<double>& v) {
        Hasher hh;
        for (std::size_t i = 0; i < v.size(); ++i) {
          hh.b(r.add(i % 4, i, v[i]));
        }
        hash_query(hh, r.query());
        hh.d(r.global_threshold());
        hh.u64(r.processed());
        return hh.h;
      });
}

}  // namespace
