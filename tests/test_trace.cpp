// Trace substrate tests: generators produce the documented statistical
// shapes; binary IO round-trips. Also the flight recorder
// (telemetry/trace.hpp): its gate, ring/histogram recording, and the
// Chrome trace-event export — compiled under both QMAX_TRACE states.
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "common/random.hpp"
#include "qmax/qmax.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace qmax::trace;

TEST(WireModel, MinimalAndTypicalFrames) {
  // 64B minimal frame occupies 84B on the wire → 14.88 Mpps at 10G.
  EXPECT_NEAR(line_rate_pps(10.0, 46) / 1e6, 14.88, 0.01);
  // 1500B IP packet → 1538B wire occupancy.
  EXPECT_NEAR(wire_bytes(1500), 1538.0, 0.01);
  EXPECT_NEAR(line_rate_pps(40.0, 1500) / 1e6, 3.2509, 0.01);
}

TEST(RandomStream, SequentialIdsUniformValues) {
  RandomStream s(1);
  double sum = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto item = s.next();
    EXPECT_EQ(item.id, i);
    ASSERT_GE(item.val, 0.0);
    ASSERT_LT(item.val, 1.0);
    sum += item.val;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(CaidaLike, FlowPopularityIsSkewed) {
  CaidaLikeGenerator gen(PacketMixConfig{.flows = 100'000, .zipf_skew = 1.0,
                                         .seed = 3});
  std::unordered_map<std::uint64_t, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) counts[gen.next().tuple.flow_key()]++;
  // Zipf(1.0): the most popular flow should hold a few percent of packets,
  // and the number of distinct flows should be far below n.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, n / 200);
  EXPECT_LT(counts.size(), static_cast<std::size_t>(n));
  EXPECT_GT(counts.size(), 1'000u);
}

TEST(CaidaLike, TimestampsIncreaseAndIdsUnique) {
  CaidaLikeGenerator gen;
  std::uint64_t last_ts = 0;
  std::unordered_set<std::uint64_t> ids;
  for (int i = 0; i < 10'000; ++i) {
    const auto p = gen.next();
    EXPECT_GT(p.timestamp, last_ts);
    last_ts = p.timestamp;
    EXPECT_TRUE(ids.insert(p.packet_id).second);
    ASSERT_GE(p.length, 40u);
    ASSERT_LE(p.length, 1501u);
  }
}

TEST(DatacenterLike, BimodalSizes) {
  DatacenterLikeGenerator gen;
  int small = 0, large = 0;
  double bytes = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const auto p = gen.next();
    bytes += p.length;
    if (p.length < 200) ++small;
    if (p.length >= 1400) ++large;
  }
  EXPECT_NEAR(small / double(n), 0.55, 0.02);
  EXPECT_NEAR(large / double(n), 0.45, 0.02);
  EXPECT_NEAR(bytes / n, DatacenterLikeGenerator::mean_packet_bytes(), 30.0);
}

TEST(MinSize, AllMinimalFrames) {
  MinSizePacketGenerator gen(1000, 1);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(gen.next().length, 46u);
}

TEST(CacheTrace, MixesZipfAndScans) {
  CacheTraceGenerator gen(CacheTraceGenerator::Config{
      .working_set = 10'000, .zipf_skew = 0.9, .scan_probability = 0.005,
      .scan_len_min = 16, .scan_len_max = 64, .seed = 7});
  int in_working_set = 0, in_scan_space = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const auto b = gen.next();
    if (b <= 10'000) ++in_working_set;
    if (b >= 40'000) ++in_scan_space;
  }
  EXPECT_GT(in_working_set, n / 2);   // hot set dominates
  EXPECT_GT(in_scan_space, n / 100);  // scans present
  EXPECT_EQ(in_working_set + in_scan_space, n);
}

TEST(TraceIO, RoundTrip) {
  CaidaLikeGenerator gen;
  auto packets = take_packets(gen, 1'000);
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_test.bin";
  write_trace(path, packets);
  const auto loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].tuple, packets[i].tuple);
    EXPECT_EQ(loaded[i].length, packets[i].length);
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].packet_id, packets[i].packet_id);
  }
  std::filesystem::remove(path);
}

TEST(TraceIO, RejectsCorruptHeader) {
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  EXPECT_THROW(read_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIO, MissingFileThrows) {
  EXPECT_THROW(read_trace("/nonexistent/path/trace.bin"), std::runtime_error);
  EXPECT_THROW(read_csv_trace("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceIO, CsvRoundTrip) {
  CaidaLikeGenerator gen({.flows = 5'000, .zipf_skew = 1.0, .seed = 13});
  auto packets = take_packets(gen, 500);
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_test.csv";
  write_csv_trace(path, packets);
  const auto loaded = read_csv_trace(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].tuple, packets[i].tuple);
    EXPECT_EQ(loaded[i].length, packets[i].length);
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].packet_id, packets[i].packet_id);
  }
  std::filesystem::remove(path);
}

TEST(TraceIO, CsvRejectsMalformedRows) {
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_bad.csv";
  auto write_and_expect_throw = [&](const char* body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(body, f);
    std::fclose(f);
    EXPECT_THROW(read_csv_trace(path), std::runtime_error) << body;
  };
  write_and_expect_throw("");  // no header
  write_and_expect_throw("wrong,header\n1,2,3,4,5,6,7,8\n");
  write_and_expect_throw(
      "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
      "1,2,3\n");  // truncated row
  write_and_expect_throw(
      "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
      "1,2,3,4,99999,6,7,8\n");  // port out of range
  write_and_expect_throw(
      "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
      "1,2,x,4,5,6,7,8\n");  // non-numeric
  std::filesystem::remove(path);
}

TEST(TraceIO, CsvSkipsCommentsAndBlankLines) {
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_comments.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "# generated by trace_tool\n"
        "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
        "\n"
        "7,100,1,2,3,4,6,64\n",
        f);
    std::fclose(f);
  }
  const auto loaded = read_csv_trace(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].packet_id, 7u);
  EXPECT_EQ(loaded[0].length, 64u);
  std::filesystem::remove(path);
}

// ---- Flight recorder (telemetry/trace.hpp) ---------------------------

namespace tel = qmax::telemetry;

#if !QMAX_TRACE_ENABLED
// OFF (the default): the span type is empty and carries no state, so
// the instrumented hot paths compile the tracing away entirely.
static_assert(!tel::kTraceEnabled);
static_assert(std::is_empty_v<tel::Span>);
#else
static_assert(tel::kTraceEnabled);
#endif

// Stage names are export keys (trace_stages JSON, Chrome "cat" fields,
// bench_snapshot.py matching) — locked here, renames are breaking.
static_assert(std::string_view(tel::stage_name(tel::Stage::kAdd)) == "add");
static_assert(std::string_view(tel::stage_name(tel::Stage::kAddBatch)) ==
              "add_batch");
static_assert(std::string_view(tel::stage_name(tel::Stage::kPrefilter)) ==
              "prefilter");
static_assert(std::string_view(tel::stage_name(tel::Stage::kMaintenance)) ==
              "maintenance");
static_assert(std::string_view(tel::stage_name(tel::Stage::kPartitionTop)) ==
              "partition_top");
static_assert(std::string_view(tel::stage_name(tel::Stage::kPsiPublish)) ==
              "psi_publish");
static_assert(std::string_view(tel::stage_name(tel::Stage::kPsiFold)) ==
              "psi_fold");
static_assert(std::string_view(tel::stage_name(tel::Stage::kMergeQuery)) ==
              "merge_query");
static_assert(std::string_view(tel::stage_name(tel::Stage::kRingPushStall)) ==
              "ring_push_stall");
static_assert(std::string_view(tel::stage_name(tel::Stage::kRingDrain)) ==
              "ring_drain");
static_assert(std::string_view(tel::stage_name(tel::Stage::kOverload)) ==
              "overload");

// Minimal JSON walker for the Chrome trace document shape: objects,
// arrays, strings, numbers, bools. Records object keys; malformed input
// fails the walk. (test_telemetry.cpp has an object-only cousin; the
// trace document needs arrays.)
struct TraceJson {
  explicit TraceJson(const std::string& str) : s(str) {}

  const std::string& s;
  std::size_t i = 0;
  bool ok = true;
  std::vector<std::string> keys;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  std::string string() {
    ws();
    std::string out;
    if (i >= s.size() || s[i] != '"') {
      ok = false;
      return out;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out += s[i++];
    }
    if (!eat('"')) ok = false;
    return out;
  }
  void value() {
    ws();
    if (!ok || i >= s.size()) {
      ok = false;
      return;
    }
    const char c = s[i];
    if (c == '{') {
      object();
    } else if (c == '[') {
      array();
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      ok = s.compare(i, 4, "true") == 0;
      i += 4;
    } else if (c == 'f') {
      ok = s.compare(i, 5, "false") == 0;
      i += 5;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      ++i;
      while (i < s.size() && (s[i] == '.' || s[i] == '-' || s[i] == '+' ||
                              s[i] == 'e' || s[i] == 'E' ||
                              (s[i] >= '0' && s[i] <= '9'))) {
        ++i;
      }
    } else {
      ok = false;
    }
  }
  void array() {
    if (!eat('[')) return;
    ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return;
    }
    for (;;) {
      value();
      if (!ok) return;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      eat(']');
      return;
    }
  }
  void object() {
    if (!eat('{')) return;
    ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return;
    }
    for (;;) {
      keys.push_back(string());
      if (!eat(':')) return;
      value();
      if (!ok) return;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      eat('}');
      return;
    }
  }
  bool parse() {
    object();
    ws();
    return ok && i == s.size();
  }
};

bool has_key(const std::vector<std::string>& keys, std::string_view k) {
  for (const auto& x : keys) {
    if (x == k) return true;
  }
  return false;
}

// Both gate states: the export is a well-formed catapult document with
// the envelope keys, and says which mode produced it.
TEST(FlightRecorder, TraceJsonIsWellFormedEitherMode) {
  const std::string json = tel::trace_json();
  TraceJson p{json};
  EXPECT_TRUE(p.parse()) << json.substr(0, 200);
  EXPECT_TRUE(has_key(p.keys, "traceEvents"));
  EXPECT_TRUE(has_key(p.keys, "displayTimeUnit"));
  EXPECT_TRUE(has_key(p.keys, "otherData"));
  const std::string flag = std::string("\"trace_enabled\": ") +
                           (tel::kTraceEnabled ? "true" : "false");
  EXPECT_NE(json.find(flag), std::string::npos);
}

// Stage histograms fold into an ordinary Registry only when the gate is
// on; the binder is a silent no-op otherwise.
TEST(FlightRecorder, StageMetricsBindMatchesGate) {
  tel::Registry reg;
  std::vector<tel::Registration> regs;
  tel::bind_trace_stage_metrics(reg, regs);
  EXPECT_EQ(regs.size(), tel::kTraceEnabled ? tel::kStageCount : 0u);
  if (tel::kTraceEnabled) {
    const auto samples = reg.collect();
    ASSERT_EQ(samples.size(), tel::kStageCount);
    EXPECT_EQ(samples[0].name, "trace.stage.add");
  }
}

// The trace_stages JSON always carries every stage key (all-zero
// histograms when off) so downstream tooling needs no gate.
TEST(FlightRecorder, StageSnapshotsCoverAllStagesEitherMode) {
  const auto snaps = tel::trace_stage_snapshots();
  ASSERT_EQ(snaps.size(), tel::kStageCount);
  EXPECT_STREQ(snaps.front().first, "add");
  EXPECT_STREQ(snaps.back().first, "psi_cas");
}

#if QMAX_TRACE_ENABLED

TEST(FlightRecorder, SpanRecordsRingEventAndHistogram) {
  auto& reg = tel::TraceRegistry::instance();
  reg.reset();
  { tel::Span span(tel::Stage::kPartitionTop); }
  tel::instant(tel::Stage::kOverload, "ladder:test_marker");

  EXPECT_EQ(reg.merged_stage(tel::Stage::kPartitionTop).snapshot().count, 1u);
  // Instants mark the histogram-free stages: no duration recorded.
  EXPECT_EQ(reg.merged_stage(tel::Stage::kOverload).snapshot().count, 0u);

  bool saw_span = false, saw_instant = false;
  for (const auto& e : reg.collect_events()) {
    if (e.stage == tel::Stage::kPartitionTop && e.dur_ns >= 1) {
      saw_span = true;
    }
    if (e.stage == tel::Stage::kOverload && e.dur_ns == 0 &&
        std::string_view(e.name) == "ladder:test_marker") {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

// The instrumented reservoir emits spans on its real hot paths; the ring
// is overwrite-oldest (bounded) while the histograms keep every sample.
TEST(FlightRecorder, InstrumentedReservoirFillsStagesAndRingIsBounded) {
  auto& reg = tel::TraceRegistry::instance();
  reg.reset();

  qmax::QMax<> r(100, 0.5);
  qmax::common::Xoshiro256 rng(7);
  const std::size_t n = 20'000;
  for (std::size_t i = 0; i < n; ++i) {
    r.add(i, rng.uniform());
  }
  std::uint64_t ids[8];
  double vals[8];
  for (std::size_t i = 0; i < 8; ++i) {
    ids[i] = n + i;
    vals[i] = rng.uniform();
  }
  r.add_batch(ids, vals, 8);

  EXPECT_EQ(reg.merged_stage(tel::Stage::kAdd).snapshot().count, n);
  EXPECT_GE(reg.merged_stage(tel::Stage::kMaintenance).snapshot().count, 1u);
  EXPECT_GE(reg.merged_stage(tel::Stage::kAddBatch).snapshot().count, 1u);

  // Every histogram sample survived; the ring retained at most its
  // capacity per recorder (flight-recorder semantics).
  std::size_t total_capacity = 0;
  std::uint64_t total_recorded = 0;
  reg.for_each_recorder([&](const tel::ThreadRecorder& rec) {
    total_capacity += rec.capacity();
    total_recorded += rec.events_recorded();
  });
  EXPECT_GE(total_recorded, static_cast<std::uint64_t>(n));
  EXPECT_LE(reg.collect_events().size(), total_capacity);
}

TEST(FlightRecorder, ChromeExportHasCatapultEventShape) {
  auto& reg = tel::TraceRegistry::instance();
  reg.reset();
  {
    tel::Span span(tel::Stage::kMergeQuery);
  }
  tel::instant(tel::Stage::kOverload, "ladder:export_check");

  const std::string json = tel::trace_json();
  TraceJson p{json};
  EXPECT_TRUE(p.parse());
  // One thread-name metadata row, complete spans, sourced instants.
  EXPECT_NE(json.find("\"name\": \"thread_name\", \"ph\": \"M\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\", \"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\", \"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"merge_query\""), std::string::npos);
  EXPECT_NE(json.find("ladder:export_check"), std::string::npos);
}

#endif  // QMAX_TRACE_ENABLED

}  // namespace
