// Trace substrate tests: generators produce the documented statistical
// shapes; binary IO round-trips.
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>

namespace {

using namespace qmax::trace;

TEST(WireModel, MinimalAndTypicalFrames) {
  // 64B minimal frame occupies 84B on the wire → 14.88 Mpps at 10G.
  EXPECT_NEAR(line_rate_pps(10.0, 46) / 1e6, 14.88, 0.01);
  // 1500B IP packet → 1538B wire occupancy.
  EXPECT_NEAR(wire_bytes(1500), 1538.0, 0.01);
  EXPECT_NEAR(line_rate_pps(40.0, 1500) / 1e6, 3.2509, 0.01);
}

TEST(RandomStream, SequentialIdsUniformValues) {
  RandomStream s(1);
  double sum = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto item = s.next();
    EXPECT_EQ(item.id, i);
    ASSERT_GE(item.val, 0.0);
    ASSERT_LT(item.val, 1.0);
    sum += item.val;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(CaidaLike, FlowPopularityIsSkewed) {
  CaidaLikeGenerator gen(PacketMixConfig{.flows = 100'000, .zipf_skew = 1.0,
                                         .seed = 3});
  std::unordered_map<std::uint64_t, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) counts[gen.next().tuple.flow_key()]++;
  // Zipf(1.0): the most popular flow should hold a few percent of packets,
  // and the number of distinct flows should be far below n.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, n / 200);
  EXPECT_LT(counts.size(), static_cast<std::size_t>(n));
  EXPECT_GT(counts.size(), 1'000u);
}

TEST(CaidaLike, TimestampsIncreaseAndIdsUnique) {
  CaidaLikeGenerator gen;
  std::uint64_t last_ts = 0;
  std::unordered_set<std::uint64_t> ids;
  for (int i = 0; i < 10'000; ++i) {
    const auto p = gen.next();
    EXPECT_GT(p.timestamp, last_ts);
    last_ts = p.timestamp;
    EXPECT_TRUE(ids.insert(p.packet_id).second);
    ASSERT_GE(p.length, 40u);
    ASSERT_LE(p.length, 1501u);
  }
}

TEST(DatacenterLike, BimodalSizes) {
  DatacenterLikeGenerator gen;
  int small = 0, large = 0;
  double bytes = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const auto p = gen.next();
    bytes += p.length;
    if (p.length < 200) ++small;
    if (p.length >= 1400) ++large;
  }
  EXPECT_NEAR(small / double(n), 0.55, 0.02);
  EXPECT_NEAR(large / double(n), 0.45, 0.02);
  EXPECT_NEAR(bytes / n, DatacenterLikeGenerator::mean_packet_bytes(), 30.0);
}

TEST(MinSize, AllMinimalFrames) {
  MinSizePacketGenerator gen(1000, 1);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(gen.next().length, 46u);
}

TEST(CacheTrace, MixesZipfAndScans) {
  CacheTraceGenerator gen(CacheTraceGenerator::Config{
      .working_set = 10'000, .zipf_skew = 0.9, .scan_probability = 0.005,
      .scan_len_min = 16, .scan_len_max = 64, .seed = 7});
  int in_working_set = 0, in_scan_space = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const auto b = gen.next();
    if (b <= 10'000) ++in_working_set;
    if (b >= 40'000) ++in_scan_space;
  }
  EXPECT_GT(in_working_set, n / 2);   // hot set dominates
  EXPECT_GT(in_scan_space, n / 100);  // scans present
  EXPECT_EQ(in_working_set + in_scan_space, n);
}

TEST(TraceIO, RoundTrip) {
  CaidaLikeGenerator gen;
  auto packets = take_packets(gen, 1'000);
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_test.bin";
  write_trace(path, packets);
  const auto loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].tuple, packets[i].tuple);
    EXPECT_EQ(loaded[i].length, packets[i].length);
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].packet_id, packets[i].packet_id);
  }
  std::filesystem::remove(path);
}

TEST(TraceIO, RejectsCorruptHeader) {
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  EXPECT_THROW(read_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIO, MissingFileThrows) {
  EXPECT_THROW(read_trace("/nonexistent/path/trace.bin"), std::runtime_error);
  EXPECT_THROW(read_csv_trace("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceIO, CsvRoundTrip) {
  CaidaLikeGenerator gen({.flows = 5'000, .zipf_skew = 1.0, .seed = 13});
  auto packets = take_packets(gen, 500);
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_test.csv";
  write_csv_trace(path, packets);
  const auto loaded = read_csv_trace(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].tuple, packets[i].tuple);
    EXPECT_EQ(loaded[i].length, packets[i].length);
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].packet_id, packets[i].packet_id);
  }
  std::filesystem::remove(path);
}

TEST(TraceIO, CsvRejectsMalformedRows) {
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_bad.csv";
  auto write_and_expect_throw = [&](const char* body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(body, f);
    std::fclose(f);
    EXPECT_THROW(read_csv_trace(path), std::runtime_error) << body;
  };
  write_and_expect_throw("");  // no header
  write_and_expect_throw("wrong,header\n1,2,3,4,5,6,7,8\n");
  write_and_expect_throw(
      "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
      "1,2,3\n");  // truncated row
  write_and_expect_throw(
      "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
      "1,2,3,4,99999,6,7,8\n");  // port out of range
  write_and_expect_throw(
      "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
      "1,2,x,4,5,6,7,8\n");  // non-numeric
  std::filesystem::remove(path);
}

TEST(TraceIO, CsvSkipsCommentsAndBlankLines) {
  const auto path =
      std::filesystem::temp_directory_path() / "qmax_trace_comments.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "# generated by trace_tool\n"
        "packet_id,timestamp_ns,src_ip,dst_ip,src_port,dst_port,proto,length\n"
        "\n"
        "7,100,1,2,3,4,6,64\n",
        f);
    std::fclose(f);
  }
  const auto loaded = read_csv_trace(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].packet_id, 7u);
  EXPECT_EQ(loaded[0].length, 64u);
  std::filesystem::remove(path);
}

}  // namespace
