// ShardedQMax correctness pins.
//
// The load-bearing claim of the sharded pipeline is *exactness*: splitting
// a stream across S reservoirs and k-way-merging at query time returns the
// same top q as one reservoir fed the whole stream — with the global-Ψ
// broadcast on or off, via the scalar or the batch path, and under real
// concurrency. q-MAX's guarantee is about the top-q VALUE multiset (ties
// at the boundary may resolve to different ids), so the differentials
// bit-compare descending-sorted values against seed_reference.hpp goldens,
// and pin ids too on a tie-free trace where the top-q item set is unique.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "qmax/qmax.hpp"
#include "qmax/sharded.hpp"
#include "seed_reference.hpp"

namespace {

using qmax::QMax;
using qmax::ShardedQMax;
using EntryT = QMax<>::EntryT;

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Same adversarial mix as the core differential suite: ties, monotone
/// ramps, NaN poison, zeros, negatives, exact-integer noise.
std::vector<double> adversarial_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix64(s);
    switch (r % 16) {
      case 0: v[i] = static_cast<double>(r % 16) * 0.25; break;
      case 1: v[i] = static_cast<double>(i); break;
      case 2: v[i] = std::numeric_limits<double>::quiet_NaN(); break;
      case 3: v[i] = 0.0; break;
      case 4: v[i] = -static_cast<double>(r % 1024); break;
      default: v[i] = static_cast<double>(r % (1ull << 40)); break;
    }
  }
  return v;
}

/// All-distinct values (a shuffled permutation scaled to exact doubles):
/// the top-q *item set* is unique, so ids must match too.
std::vector<double> distinct_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i) * 0.5;
  std::uint64_t s = seed;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(v[i - 1], v[splitmix64(s) % i]);
  }
  return v;
}

/// Deterministic dispatch of item i to a shard — the test's stand-in for
/// RSS. Mixed, so shards see interleaved (not contiguous) substreams.
std::size_t dispatch(std::size_t i, std::size_t shards) {
  std::uint64_t s = 0x5bd1e995u ^ i;
  return splitmix64(s) % shards;
}

std::vector<double> sorted_query_values(const std::vector<EntryT>& out) {
  std::vector<double> v;
  v.reserve(out.size());
  for (const EntryT& e : out) v.push_back(e.val);
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

void expect_same_values(const std::vector<EntryT>& got,
                        const std::vector<EntryT>& want, const char* ctx) {
  const auto g = sorted_query_values(got);
  const auto w = sorted_query_values(want);
  ASSERT_EQ(g.size(), w.size()) << ctx;
  for (std::size_t i = 0; i < g.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(g[i]),
              std::bit_cast<std::uint64_t>(w[i]))
        << ctx << " rank " << i;
  }
}

std::size_t soak_items(std::size_t fallback) {
  if (const char* e = std::getenv("QMAX_SOAK_ITEMS")) {
    const long v = std::atol(e);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// ---------------------------------------------------------------------
// Differentials: merge-on-query vs the single-reservoir seed golden.
// ---------------------------------------------------------------------

TEST(ShardedQMax, MergeMatchesSingleReservoirGolden) {
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    for (const bool bcast : {true, false}) {
      for (const std::size_t q : {1u, 7u, 64u, 100u}) {
        ShardedQMax<QMax<>> sh(shards, q, {}, bcast);
        seedref::QMax<> ref(q, 0.25);
        const auto vals = adversarial_doubles(40'000, 17 * shards + q);
        for (std::size_t i = 0; i < vals.size(); ++i) {
          sh.add(dispatch(i, shards), i, vals[i]);
          ref.add(i, vals[i]);
          if (i % 4999 == 0) {
            expect_same_values(sh.query(), ref.query(), "checkpoint");
          }
        }
        expect_same_values(sh.query(), ref.query(), "final");
        EXPECT_EQ(sh.processed(), ref.processed());
        EXPECT_EQ(sh.shard_count(), shards);
        EXPECT_EQ(sh.q(), q);
      }
    }
  }
}

TEST(ShardedQMax, MergeMatchesGoldenIdsOnTieFreeTrace) {
  const auto vals = distinct_doubles(30'000, 99);
  for (const bool bcast : {true, false}) {
    ShardedQMax<QMax<>> sh(4, 64, {}, bcast);
    seedref::QMax<> ref(64, 0.25);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      sh.add(dispatch(i, 4), i, vals[i]);
      ref.add(i, vals[i]);
    }
    auto got = sh.query();
    auto want = ref.query();
    const auto by_id = [](const EntryT& a, const EntryT& b) {
      return a.id < b.id;
    };
    std::sort(got.begin(), got.end(), by_id);
    std::sort(want.begin(), want.end(), by_id);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "slot " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].val),
                std::bit_cast<std::uint64_t>(want[i].val))
          << "slot " << i;
    }
  }
}

TEST(ShardedQMax, BatchPathMatchesGolden) {
  // Same exactness through add_batch (the SIMD-prefiltered path the
  // sharded consumers actually use), with randomized run lengths.
  ShardedQMax<QMax<>> sh(4, 128, {}, true);
  seedref::QMax<> ref(128, 0.25);
  const auto vals = adversarial_doubles(60'000, 7);
  // Pre-partition per shard, then feed in randomized interleaved chunks.
  std::vector<std::vector<std::uint64_t>> ids(4);
  std::vector<std::vector<double>> sv(4);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    const std::size_t s = dispatch(i, 4);
    ids[s].push_back(i);
    sv[s].push_back(vals[i]);
    ref.add(i, vals[i]);
  }
  std::uint64_t s = 5;
  std::vector<std::size_t> pos(4, 0);
  for (bool more = true; more;) {
    more = false;
    for (std::size_t sh_i = 0; sh_i < 4; ++sh_i) {
      const std::size_t left = sv[sh_i].size() - pos[sh_i];
      if (left == 0) continue;
      const std::size_t run = std::min<std::size_t>(
          1 + splitmix64(s) % 300, left);
      sh.add_batch(sh_i, ids[sh_i].data() + pos[sh_i],
                   sv[sh_i].data() + pos[sh_i], run);
      pos[sh_i] += run;
      more = true;
    }
  }
  expect_same_values(sh.query(), ref.query(), "batch final");
  EXPECT_EQ(sh.processed(), ref.processed());
}

// ---------------------------------------------------------------------
// Broadcast semantics.
// ---------------------------------------------------------------------

TEST(ShardedQMax, BroadcastTightensOtherShardsAdmission) {
  // Shard 0 sees the heavy prefix and establishes a high Ψ; shard 1 then
  // sees only small values. With the broadcast on, shard 1 folds shard
  // 0's bound and rejects them all; off, shard 1 happily fills up.
  const std::size_t q = 32;
  ShardedQMax<QMax<>> on(2, q, {}, true);
  ShardedQMax<QMax<>> off(2, q, {}, false);
  for (std::size_t i = 0; i < 4'000; ++i) {
    const double v = 1e6 + static_cast<double>(i);
    on.add(0, i, v);
    off.add(0, i, v);
  }
  ASSERT_GT(on.shard_threshold(0), 0.0);
  EXPECT_EQ(on.global_threshold(), on.shard_threshold(0));
  const std::uint64_t before_on = on.admitted();
  const std::uint64_t before_off = off.admitted();
  for (std::size_t i = 0; i < 4'000; ++i) {
    const double v = static_cast<double>(i % 100);  // far below shard 0's Ψ
    on.add(1, 100'000 + i, v);
    off.add(1, 100'000 + i, v);
  }
  EXPECT_EQ(on.admitted(), before_on) << "broadcast should reject all";
  EXPECT_GT(off.admitted(), before_off) << "independent shard must admit";
  EXPECT_GT(on.broadcast_folds(), 0u);
  EXPECT_GT(on.broadcast_publishes(), 0u);
  EXPECT_EQ(off.broadcast_folds(), 0u);
  // Folding never breaks the merge: both agree on the global top q.
  expect_same_values(on.query(), off.query(), "bcast on/off");
  // threshold() reports the tightest bound across the group.
  EXPECT_GE(on.threshold(), on.shard_threshold(1));
  EXPECT_GE(on.shard_threshold(1), on.shard_threshold(0))
      << "shard 1 should have folded shard 0's bound";
}

TEST(ShardedQMax, ResetEqualsFresh) {
  const auto warm = adversarial_doubles(9'000, 555);
  const auto probe = adversarial_doubles(9'000, 556);
  ShardedQMax<QMax<>> dirty(4, 32, {}, true);
  ShardedQMax<QMax<>> fresh(4, 32, {}, true);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    dirty.add(dispatch(i, 4), i, warm[i]);
  }
  dirty.reset();
  EXPECT_EQ(dirty.processed(), 0u);
  EXPECT_EQ(dirty.live_count(), 0u);
  EXPECT_EQ(dirty.broadcast_folds(), 0u);
  EXPECT_EQ(dirty.broadcast_publishes(), 0u);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    dirty.add(dispatch(i, 4), i, probe[i]);
    fresh.add(dispatch(i, 4), i, probe[i]);
  }
  expect_same_values(dirty.query(), fresh.query(), "post-reset");
  EXPECT_EQ(dirty.admitted(), fresh.admitted());
  EXPECT_EQ(dirty.live_count(), fresh.live_count());
}

// ---------------------------------------------------------------------
// Merge cache: clean queries replay the cached top q.
// ---------------------------------------------------------------------

TEST(ShardedQMax, CleanQuerySkipsRemerge) {
  ShardedQMax<QMax<>> sh(4, 64, {}, true);
  const auto vals = adversarial_doubles(20'000, 42);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    sh.add(dispatch(i, 4), i, vals[i]);
  }
  const auto first = sh.query();
  EXPECT_EQ(sh.merges_skipped_clean(), 0u);
  // No shard advanced: the second query must replay the cache, and the
  // replay must be the identical answer.
  const auto second = sh.query();
  EXPECT_EQ(sh.merges_skipped_clean(), 1u);
  expect_same_values(second, first, "cached replay");
  const auto third = sh.query();
  EXPECT_EQ(sh.merges_skipped_clean(), 2u);
  expect_same_values(third, first, "cached replay again");
}

TEST(ShardedQMax, DirtyShardInvalidatesMergeCache) {
  ShardedQMax<QMax<>> sh(4, 32, {}, true);
  seedref::QMax<> ref(32, 0.25);
  const auto vals = adversarial_doubles(10'000, 77);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    sh.add(dispatch(i, 4), i, vals[i]);
    ref.add(i, vals[i]);
  }
  (void)sh.query();
  (void)sh.query();
  EXPECT_EQ(sh.merges_skipped_clean(), 1u);
  // ANY add dirties its shard's epoch — even one the screen rejects
  // outright never reuses a stale cache silently... but a screened add
  // still bumps processed(), so the re-merge is computed, and computed
  // correctly.
  sh.add(0, 999'999, 1e18);
  ref.add(999'999, 1e18);
  expect_same_values(sh.query(), ref.query(), "post-dirty re-merge");
  EXPECT_EQ(sh.merges_skipped_clean(), 1u) << "dirty query must re-merge";
  (void)sh.query();
  EXPECT_EQ(sh.merges_skipped_clean(), 2u);
  sh.reset();
  EXPECT_EQ(sh.merges_skipped_clean(), 0u);
}

// ---------------------------------------------------------------------
// Concurrency: one writer thread per shard, broadcast atomics hot.
// Run under TSan via the sanitize CI leg (-R ShardedQMax).
// ---------------------------------------------------------------------

TEST(ShardedQMax, ConcurrentSoakStaysExact) {
  const std::size_t n = soak_items(400'000);
  const std::size_t kShards = 4;
  const std::size_t q = 256;
  const auto vals = adversarial_doubles(n, 2026);

  // Pre-partition so each thread touches only its own shard's slice.
  std::vector<std::vector<std::uint64_t>> ids(kShards);
  std::vector<std::vector<double>> sv(kShards);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = dispatch(i, kShards);
    ids[s].push_back(i);
    sv[s].push_back(vals[i]);
  }

  ShardedQMax<QMax<>> sh(kShards, q, {}, true);
  std::atomic<int> go{0};
  std::vector<std::thread> writers;
  writers.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&, s] {
      go.fetch_add(1, std::memory_order_relaxed);
      while (go.load(std::memory_order_relaxed) <
             static_cast<int>(kShards)) {
      }
      // Mixed scalar / batch adds, like a real consumer draining a ring.
      const std::size_t m = ids[s].size();
      std::size_t i = 0;
      std::uint64_t rng = 31 + s;
      while (i < m) {
        const std::size_t run =
            std::min<std::size_t>(1 + splitmix64(rng) % 64, m - i);
        if (run == 1) {
          sh.add(s, ids[s][i], sv[s][i]);
        } else {
          sh.add_batch(s, ids[s].data() + i, sv[s].data() + i, run);
        }
        i += run;
      }
    });
  }
  for (auto& t : writers) t.join();

  seedref::QMax<> ref(q, 0.25);
  for (std::size_t i = 0; i < n; ++i) ref.add(i, vals[i]);
  expect_same_values(sh.query(), ref.query(), "concurrent soak");
  EXPECT_EQ(sh.processed(), ref.processed());
}

}  // namespace
