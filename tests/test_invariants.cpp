// check_invariants(): the white-box audits hold on every reservoir
// variant through construction, admission, maintenance, query, and
// reset — and the audit machinery itself reports violations usefully.
#include "qmax/invariants.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "qmax/amortized_qmax.hpp"
#include "qmax/exp_decay.hpp"
#include "qmax/qmax.hpp"
#include "qmax/sliding.hpp"
#include "qmax/time_sliding.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::AuditResult;
using qmax::check_invariants;
using qmax::ExpDecayQMax;
using qmax::MonotoneAuditor;
using qmax::QMax;
using qmax::SlackQMax;
using qmax::TimeSlackQMax;

#define EXPECT_AUDIT_OK(r)                                 \
  do {                                                     \
    const AuditResult audit_ = check_invariants(r);        \
    EXPECT_TRUE(audit_.ok()) << audit_.to_string();        \
  } while (0)

TEST(AuditResult, ReportsViolations) {
  AuditResult a;
  EXPECT_TRUE(a.ok());
  a.expect(true, "never recorded");
  EXPECT_TRUE(a.ok());
  a.expect(false, "slot 3 corrupt");
  a.expect(false, "psi regressed");
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.violations.size(), 2u);
  EXPECT_NE(a.to_string().find("slot 3 corrupt"), std::string::npos);
  EXPECT_NE(a.to_string().find("psi regressed"), std::string::npos);
}

TEST(Invariants, QMaxHoldsAtEveryStep) {
  // Audit after *every* update: catches mid-iteration states (scratch
  // partially filled, selection mid-flight) that end-of-run checks miss.
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (const double gamma : {0.05, 0.25, 1.0}) {
    QMax<std::uint64_t, double> r(16, gamma);
    EXPECT_AUDIT_OK(r);
    for (std::uint64_t i = 0; i < 2'000; ++i) {
      r.add(i, dist(rng));
      const AuditResult a = check_invariants(r);
      ASSERT_TRUE(a.ok()) << "gamma " << gamma << " item " << i << ":\n"
                          << a.to_string();
    }
    (void)r.query();
    EXPECT_AUDIT_OK(r);
    r.reset();
    EXPECT_AUDIT_OK(r);
  }
}

TEST(Invariants, QMaxIntegerValues) {
  QMax<std::uint32_t, std::int64_t> r(8, 0.5);
  std::mt19937_64 rng(2);
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    r.add(i, static_cast<std::int64_t>(rng() % 1'000'000));
    if (i % 64 == 0) EXPECT_AUDIT_OK(r);
  }
  EXPECT_AUDIT_OK(r);
}

TEST(Invariants, AmortizedHoldsAtEveryStep) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  AmortizedQMax<> r(32, 0.25);
  EXPECT_AUDIT_OK(r);
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    r.add(static_cast<std::uint32_t>(i), dist(rng));
    const AuditResult a = check_invariants(r);
    ASSERT_TRUE(a.ok()) << "item " << i << ":\n" << a.to_string();
  }
  (void)r.query();
  EXPECT_AUDIT_OK(r);
  r.reset();
  EXPECT_AUDIT_OK(r);
}

TEST(Invariants, SlackWindowVariantsHold) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const auto factory = [] { return QMax<>(8, 0.5); };
  SlackQMax<QMax<>> basic(500, 0.1, factory);
  SlackQMax<QMax<>> hier(500, 0.1, factory, {.levels = 2});
  SlackQMax<QMax<>> lazy(500, 0.1, factory, {.levels = 2, .lazy = true});
  EXPECT_AUDIT_OK(basic);
  EXPECT_AUDIT_OK(hier);
  EXPECT_AUDIT_OK(lazy);
  for (std::uint32_t i = 0; i < 3'000; ++i) {
    const double v = dist(rng);
    basic.add(i, v);
    hier.add(i, v);
    lazy.add(i, v);
    if (i % 37 == 0) {  // off the block boundary, so mid-block states too
      EXPECT_AUDIT_OK(basic);
      EXPECT_AUDIT_OK(hier);
      EXPECT_AUDIT_OK(lazy);
    }
  }
  (void)basic.query();
  (void)hier.query();
  (void)lazy.query();
  EXPECT_AUDIT_OK(basic);
  EXPECT_AUDIT_OK(hier);
  EXPECT_AUDIT_OK(lazy);
  basic.reset();
  EXPECT_AUDIT_OK(basic);
}

TEST(Invariants, TimeSlackHoldsThroughBurstsAndGaps) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  TimeSlackQMax<QMax<>> sw(1'000, 0.25, [] { return QMax<>(8, 0.5); });
  EXPECT_AUDIT_OK(sw);
  std::uint64_t now = 0;
  for (std::uint32_t i = 0; i < 2'000; ++i) {
    // Bursts with occasional long quiet periods (whole blocks expire).
    now += (i % 97 == 0) ? 400 : (rng() % 3);
    sw.add(i, dist(rng), now);
    if (i % 41 == 0) EXPECT_AUDIT_OK(sw);
  }
  (void)sw.query();
  EXPECT_AUDIT_OK(sw);
}

TEST(Invariants, ExpDecayHolds) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  ExpDecayQMax<> r(16, 0.9, 0.25);
  EXPECT_AUDIT_OK(r);
  for (std::uint32_t i = 0; i < 20'000; ++i) {
    r.add(i, dist(rng));
    if (i % 101 == 0) EXPECT_AUDIT_OK(r);
  }
  (void)r.query();
  EXPECT_AUDIT_OK(r);
}

TEST(Invariants, MonotoneAuditorTracksPsiAndProcessed) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  QMax<> r(8, 0.25);
  MonotoneAuditor<QMax<>> mono;
  for (std::uint32_t i = 0; i < 3'000; ++i) {
    r.add(i, dist(rng));
    if (i % 53 == 0) {
      const AuditResult a = mono.observe(r);
      ASSERT_TRUE(a.ok()) << a.to_string();
    }
  }
  const AuditResult last = mono.observe(r);
  EXPECT_TRUE(last.ok()) << last.to_string();
}

TEST(Invariants, MonotoneAuditorCatchesReset) {
  // reset() drops Ψ back to the empty value — the cross-observation
  // auditor must flag the regression (the invariant it exists to guard).
  QMax<> r(4, 0.5);
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  MonotoneAuditor<QMax<>> mono;
  for (std::uint32_t i = 0; i < 200; ++i) r.add(i, dist(rng));
  ASSERT_TRUE(mono.observe(r).ok());
  ASSERT_GT(r.threshold(), 0.0);  // Ψ actually rose
  r.reset();
  const AuditResult a = mono.observe(r);
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.to_string().find("regressed"), std::string::npos)
      << a.to_string();
}

}  // namespace
