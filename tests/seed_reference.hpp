// Frozen reference copies of the pre-refactor (seed) reservoir algorithms.
//
// These are the "golden outputs recorded from seed implementations" of the
// core-extraction refactor, kept as executable code rather than data files:
// each class below is a line-faithful copy of the seed implementation with
// telemetry and fault hooks removed (both are identity/no-op in the default
// build, so removing them changes nothing observable). The differential
// suite (test_core_differential.cpp) drives a reference instance and the
// production instance through identical traces — including NaN-laced, tied,
// and monotone-adversarial ones — and asserts bit-identical admission
// decisions, Ψ trajectories, and query results.
//
// DO NOT "fix" or modernise these copies: their entire value is that they
// preserve the seed behavior exactly. If production behavior must change,
// the differential tests change with it — deliberately and visibly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/select.hpp"
#include "qmax/entry.hpp"

namespace seedref {

using qmax::BasicEntry;
using qmax::is_admissible_value;
using qmax::kEmptyValue;
using qmax::ValueOrder;

// ---- Seed QMax (deamortized Algorithm 1), scalar path ------------------
template <typename Id = std::uint64_t, typename Value = double>
class QMax {
 public:
  using EntryT = BasicEntry<Id, Value>;

  explicit QMax(std::size_t q, double gamma = 0.25,
                unsigned budget_factor = 4)
      : q_(q) {
    g_ = static_cast<std::size_t>(
        std::ceil(static_cast<double>(q) * gamma / 2.0));
    if (g_ == 0) g_ = 1;
    arr_.resize(q_ + 2 * g_, EntryT{Id{}, kEmptyValue<Value>});
    const std::size_t m = q_ + g_;
    step_budget_ = static_cast<std::uint64_t>(budget_factor) *
                       ((m + g_ - 1) / g_) +
                   budget_factor;
    scratch_.reserve(arr_.size());
    begin_iteration();
  }

  bool add(Id id, Value val) {
    ++processed_;
    if (!is_admissible_value(val) || !(val > psi_)) return false;
    ++admitted_;
    admit(id, val);
    return true;
  }

  [[nodiscard]] Value threshold() const noexcept { return psi_; }

  void query_into(std::vector<EntryT>& out) const {
    scratch_.clear();
    for_each_live([&](const EntryT& e) { scratch_.push_back(e); });
    const std::size_t take = std::min(q_, scratch_.size());
    if (take > 0 && take < scratch_.size()) {
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + static_cast<std::ptrdiff_t>(take - 1),
                       scratch_.end(),
                       ValueOrder<Id, Value>{.descending = true});
    }
    out.insert(out.end(), scratch_.begin(),
               scratch_.begin() + static_cast<std::ptrdiff_t>(take));
  }

  [[nodiscard]] std::vector<EntryT> query() const {
    std::vector<EntryT> out;
    out.reserve(q_);
    query_into(out);
    return out;
  }

  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    auto visit = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (arr_[i].val != kEmptyValue<Value>) fn(arr_[i]);
      }
    };
    if (parity_a_) {
      visit(0, q_ + g_);
      visit(q_ + g_, q_ + g_ + steps_);
    } else {
      visit(0, steps_);
      visit(g_, arr_.size());
    }
  }

  [[nodiscard]] std::size_t q() const noexcept { return q_; }
  [[nodiscard]] std::size_t live_count() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t late_selections() const noexcept {
    return late_selections_;
  }

 private:
  void admit(Id id, Value val) {
    arr_[scratch_base() + steps_] = EntryT{id, val};
    ++live_;
    ++steps_;
    advance_selection();
    if (steps_ == g_) end_iteration();
  }

  [[nodiscard]] std::size_t scratch_base() const noexcept {
    return parity_a_ ? q_ + g_ : 0;
  }
  [[nodiscard]] std::size_t candidate_base() const noexcept {
    return parity_a_ ? 0 : g_;
  }

  void begin_iteration() {
    const std::size_t m = q_ + g_;
    const bool desc = !parity_a_;
    const std::size_t k = parity_a_ ? g_ : q_ - 1;
    select_.start(arr_.data() + candidate_base(), m, k,
                  ValueOrder<Id, Value>{.descending = desc});
    psi_applied_ = false;
  }

  void advance_selection() {
    if (select_.done()) return;
    if (select_.step(step_budget_)) apply_new_threshold();
  }

  void apply_new_threshold() {
    if (psi_applied_) return;
    const Value nth = select_.nth().val;
    if (nth > psi_) psi_ = nth;
    psi_applied_ = true;
  }

  void end_iteration() {
    if (!select_.done()) {
      ++late_selections_;
      select_.finish();
    }
    apply_new_threshold();
    const std::size_t lose_lo = parity_a_ ? 0 : g_ + q_;
    for (std::size_t i = lose_lo; i < lose_lo + g_; ++i) {
      if (arr_[i].val != kEmptyValue<Value>) {
        --live_;
        arr_[i] = EntryT{Id{}, kEmptyValue<Value>};
      }
    }
    parity_a_ = !parity_a_;
    steps_ = 0;
    begin_iteration();
  }

  std::size_t q_;
  std::size_t g_ = 0;
  std::vector<EntryT> arr_;
  Value psi_ = kEmptyValue<Value>;
  bool parity_a_ = true;
  bool psi_applied_ = false;
  std::size_t steps_ = 0;
  std::size_t live_ = 0;
  std::uint64_t step_budget_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t late_selections_ = 0;
  qmax::common::IncrementalSelect<EntryT, ValueOrder<Id, Value>> select_;
  mutable std::vector<EntryT> scratch_;
};

// ---- Seed AmortizedQMax (Section 4.2 batch variant), scalar path -------
template <typename Id = std::uint64_t, typename Value = double>
class AmortizedQMax {
 public:
  using EntryT = BasicEntry<Id, Value>;

  explicit AmortizedQMax(std::size_t q, double gamma = 0.25) : q_(q) {
    std::size_t extra = static_cast<std::size_t>(
        std::ceil(static_cast<double>(q) * gamma));
    if (extra == 0) extra = 1;
    arr_.reserve(q_ + extra);
    cap_ = q_ + extra;
  }

  bool add(Id id, Value val) {
    ++processed_;
    if (!is_admissible_value(val) || !(val > psi_)) return false;
    ++admitted_;
    arr_.push_back(EntryT{id, val});
    if (arr_.size() == cap_) maintain();
    return true;
  }

  [[nodiscard]] Value threshold() const noexcept { return psi_; }

  void query_into(std::vector<EntryT>& out) const {
    const std::size_t take = std::min(q_, arr_.size());
    if (take == 0) return;
    scratch_ = arr_;
    if (take < scratch_.size()) {
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + static_cast<std::ptrdiff_t>(take - 1),
                       scratch_.end(),
                       ValueOrder<Id, Value>{.descending = true});
    }
    out.insert(out.end(), scratch_.begin(),
               scratch_.begin() + static_cast<std::ptrdiff_t>(take));
  }

  [[nodiscard]] std::vector<EntryT> query() const {
    std::vector<EntryT> out;
    out.reserve(q_);
    query_into(out);
    return out;
  }

  [[nodiscard]] std::size_t q() const noexcept { return q_; }
  [[nodiscard]] std::size_t live_count() const noexcept { return arr_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }

 private:
  void maintain() {
    std::nth_element(arr_.begin(),
                     arr_.begin() + static_cast<std::ptrdiff_t>(q_ - 1),
                     arr_.end(), ValueOrder<Id, Value>{.descending = true});
    psi_ = std::max(psi_, arr_[q_ - 1].val);
    arr_.resize(q_);
  }

  std::size_t q_;
  std::size_t cap_ = 0;
  std::vector<EntryT> arr_;
  Value psi_ = kEmptyValue<Value>;
  std::uint64_t processed_ = 0;
  std::uint64_t admitted_ = 0;
  mutable std::vector<EntryT> scratch_;
};

// ---- Seed ExpDecayQMax (Section 5), scalar path ------------------------
template <typename Id = std::uint64_t>
class ExpDecayQMax {
 public:
  using EntryT = BasicEntry<Id, double>;

  ExpDecayQMax(std::size_t q, double decay, double gamma = 0.25)
      : inner_(q, gamma), log_c_(std::log(decay)) {}

  bool add(Id id, double val) {
    const std::uint64_t i = t_++;
    if (!(val > 0.0) || !std::isfinite(val)) return false;
    const double keyed = std::log(val) - static_cast<double>(i) * log_c_;
    return inner_.add(id, keyed);
  }

  [[nodiscard]] std::vector<EntryT> query_log() const {
    std::vector<EntryT> out;
    inner_.query_into(out);
    const double now_shift = static_cast<double>(t_) * log_c_;
    for (EntryT& e : out) e.val += now_shift;
    return out;
  }

  [[nodiscard]] std::uint64_t processed() const noexcept { return t_; }
  [[nodiscard]] const QMax<Id, double>& inner() const noexcept {
    return inner_;
  }

 private:
  QMax<Id, double> inner_;
  double log_c_;
  std::uint64_t t_ = 0;
};

// ---- Seed LrfuQMaxCache (amortized, Section 5.1) -----------------------
template <typename Key = std::uint64_t>
class LrfuQMaxCache {
 public:
  LrfuQMaxCache(std::size_t q, double decay, double gamma = 0.25)
      : q_(q), log_c_(std::log(decay)) {
    std::size_t extra =
        static_cast<std::size_t>(std::ceil(static_cast<double>(q) * gamma));
    if (extra == 0) extra = 1;
    cap_ = q_ + extra;
    entries_.reserve(cap_);
    index_.reserve(cap_ * 2);
  }

  bool access(Key key) {
    ++accesses_;
    const double w = -static_cast<double>(t_++) * log_c_;
    const bool hit = index_.emplace(key, kPending).second == false;
    if (hit) ++hits_;
    entries_.push_back(Slot{key, w});
    if (entries_.size() == cap_) maintain();
    return hit;
  }

  [[nodiscard]] bool contains(Key key) const {
    return index_.find(key) != index_.end();
  }
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }

  [[nodiscard]] std::vector<std::pair<Key, double>> ranked_keys() {
    maintain();
    std::vector<std::pair<Key, double>> out;
    out.reserve(entries_.size());
    for (const Slot& e : entries_) out.emplace_back(e.key, e.w);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return out;
  }

 private:
  static constexpr std::uint32_t kPending = 0xFFFFFFFFu;

  struct Slot {
    Key key;
    double w;
  };

  void maintain() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Slot& e = entries_[i];
      auto it = index_.find(e.key);
      if (it->second != kPending && it->second < out &&
          entries_[it->second].key == e.key) {
        double& acc = entries_[it->second].w;
        const double hi = acc > e.w ? acc : e.w;
        const double lo = acc > e.w ? e.w : acc;
        acc = hi + std::log1p(std::exp(lo - hi));
      } else {
        entries_[out] = e;
        it->second = static_cast<std::uint32_t>(out);
        ++out;
      }
    }
    entries_.resize(out);

    if (entries_.size() > q_) {
      std::nth_element(entries_.begin(),
                       entries_.begin() + static_cast<std::ptrdiff_t>(q_ - 1),
                       entries_.end(),
                       [](const Slot& a, const Slot& b) { return a.w > b.w; });
      for (std::size_t i = q_; i < entries_.size(); ++i) {
        index_.erase(entries_[i].key);
      }
      entries_.resize(q_);
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        index_[entries_[i].key] = static_cast<std::uint32_t>(i);
      }
    }
  }

  std::size_t q_;
  double log_c_;
  std::size_t cap_ = 0;
  std::vector<Slot> entries_;
  std::unordered_map<Key, std::uint32_t> index_;
  std::uint64_t t_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t accesses_ = 0;
};

// ---- Seed LrfuQMaxCacheDeamortized (Figure 3) --------------------------
template <typename Key = std::uint64_t>
class LrfuQMaxCacheDeamortized {
 public:
  LrfuQMaxCacheDeamortized(std::size_t q, double decay, double gamma = 0.25,
                           unsigned budget_factor = 4)
      : q_(q), log_c_(std::log(decay)) {
    g_ = static_cast<std::size_t>(
        std::ceil(static_cast<double>(q) * gamma / 2.0));
    if (g_ == 0) g_ = 1;
    arr_.assign(q_ + 2 * g_, Claim{Key{}, kEmptyValue<double>});
    const std::size_t m = q_ + g_;
    step_budget_ = static_cast<std::uint64_t>(budget_factor) *
                       ((m + g_ - 1) / g_) +
                   budget_factor;
    index_.reserve(arr_.size() * 2);
    begin_iteration();
  }

  bool access(Key key) {
    ++accesses_;
    const double now_w = -static_cast<double>(t_++) * log_c_;
    auto it = index_.find(key);
    const bool hit = it != index_.end();
    if (hit) ++hits_;

    double w_new = now_w;
    if (hit) {
      const double hi = it->second.w > now_w ? it->second.w : now_w;
      const double lo = it->second.w > now_w ? now_w : it->second.w;
      w_new = hi + std::log1p(std::exp(lo - hi));
    }

    if (hit && it->second.claim_iter == iteration_) {
      it->second.w = w_new;
      it->second.claim_w = w_new;
      arr_[it->second.claim_slot].w = w_new;
      return hit;
    }
    if (hit && it->second.claim_w > psi_) {
      it->second.w = w_new;
      return hit;
    }
    const std::size_t slot = scratch_base() + steps_;
    reconcile_overwrite(slot);
    arr_[slot] = Claim{key, w_new};
    index_[key] = Info{w_new, w_new, iteration_, slot};
    ++steps_;
    advance_selection();
    if (steps_ == g_) end_iteration();
    return hit;
  }

  [[nodiscard]] bool contains(Key key) const {
    return index_.find(key) != index_.end();
  }
  [[nodiscard]] double score(Key key) const {
    auto it = index_.find(key);
    if (it == index_.end()) return 0.0;
    return std::exp(it->second.w + static_cast<double>(t_) * log_c_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }

 private:
  struct Claim {
    Key key;
    double w;
  };
  struct Info {
    double w;
    double claim_w;
    std::uint64_t claim_iter;
    std::size_t claim_slot;
  };
  struct ClaimOrder {
    bool descending = false;
    [[nodiscard]] bool operator()(const Claim& a,
                                  const Claim& b) const noexcept {
      return descending ? b.w < a.w : a.w < b.w;
    }
  };

  [[nodiscard]] std::size_t scratch_base() const noexcept {
    return parity_a_ ? q_ + g_ : 0;
  }
  [[nodiscard]] std::size_t candidate_base() const noexcept {
    return parity_a_ ? 0 : g_;
  }

  void begin_iteration() {
    const std::size_t m = q_ + g_;
    const bool desc = !parity_a_;
    const std::size_t k = parity_a_ ? g_ : q_ - 1;
    select_.start(arr_.data() + candidate_base(), m, k,
                  ClaimOrder{.descending = desc});
    psi_applied_ = false;
  }

  void advance_selection() {
    if (select_.done()) return;
    if (select_.step(step_budget_)) apply_new_threshold();
  }

  void apply_new_threshold() {
    if (psi_applied_) return;
    const double nth = select_.nth().w;
    if (nth > psi_) psi_ = nth;
    psi_applied_ = true;
  }

  void end_iteration() {
    if (!select_.done()) select_.finish();
    apply_new_threshold();
    parity_a_ = !parity_a_;
    steps_ = 0;
    ++iteration_;
    begin_iteration();
  }

  void reconcile_overwrite(std::size_t slot) {
    Claim& old = arr_[slot];
    if (old.w == kEmptyValue<double>) return;
    auto it = index_.find(old.key);
    if (it != index_.end() && it->second.claim_w == old.w) {
      index_.erase(it);
    }
    old.w = kEmptyValue<double>;
  }

  std::size_t q_;
  double log_c_;
  std::size_t g_ = 0;
  std::vector<Claim> arr_;
  std::unordered_map<Key, Info> index_;
  double psi_ = kEmptyValue<double>;
  bool parity_a_ = true;
  bool psi_applied_ = false;
  std::uint64_t iteration_ = 0;
  std::size_t steps_ = 0;
  std::uint64_t t_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t step_budget_ = 0;
  qmax::common::IncrementalSelect<Claim, ClaimOrder> select_;
};

}  // namespace seedref
