// Flow table substrate: EMC semantics, masked classification, two-tier
// lookup statistics.
#include "vswitch/flow_table.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace qmax::vswitch;
using qmax::trace::FiveTuple;
using qmax::trace::Proto;

FiveTuple tuple(std::uint32_t src, std::uint32_t dst = 1,
                std::uint16_t sport = 10, std::uint16_t dport = 80) {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = sport;
  t.dst_port = dport;
  t.proto = Proto::kTcp;
  return t;
}

TEST(ExactMatchCache, InsertLookup) {
  ExactMatchCache emc(64);
  EXPECT_FALSE(emc.lookup(tuple(1)).has_value());
  emc.insert(tuple(1), Action{7});
  auto hit = emc.lookup(tuple(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->out_port, 7);
  EXPECT_FALSE(emc.lookup(tuple(2)).has_value());
}

TEST(ExactMatchCache, ConflictOverwrites) {
  // Direct-mapped: two tuples in the same slot evict each other, never
  // return wrong actions.
  ExactMatchCache emc(64);
  qmax::common::Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto t = tuple(rng.bounded(1'000), rng.bounded(1'000));
    emc.insert(t, Action{static_cast<std::uint16_t>(t.src_ip & 0xFF)});
    auto hit = emc.lookup(t);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->out_port, t.src_ip & 0xFF);
  }
}

TEST(ExactMatchCache, ClearEmpties) {
  ExactMatchCache emc(64);
  emc.insert(tuple(1), Action{1});
  emc.clear();
  EXPECT_FALSE(emc.lookup(tuple(1)).has_value());
}

TEST(TupleSpaceClassifier, MaskedMatching) {
  TupleSpaceClassifier cls;
  FlowMask mask;  // match low byte of src_ip only
  mask.src_ip = 0xFF;
  mask.dst_ip = 0;
  mask.src_port = 0;
  mask.dst_port = 0;
  mask.proto = 0;
  FiveTuple match;
  match.src_ip = 0x42;
  cls.add_rule(mask, match, Action{9});

  // Any tuple whose src_ip low byte is 0x42 hits, regardless of the rest.
  auto hit = cls.lookup(tuple(0xAABB0042, 77, 1234, 4321));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->out_port, 9);
  EXPECT_FALSE(cls.lookup(tuple(0xAABB0043)).has_value());
}

TEST(TupleSpaceClassifier, MultipleSubtablesFirstHitWins) {
  TupleSpaceClassifier cls;
  FlowMask exact;  // full 5-tuple
  cls.add_rule(exact, tuple(5), Action{1});
  FlowMask by_src;
  by_src.src_ip = 0xFFFFFFFF;
  by_src.dst_ip = 0;
  by_src.src_port = 0;
  by_src.dst_port = 0;
  by_src.proto = 0;
  FiveTuple m;
  m.src_ip = 5;
  cls.add_rule(by_src, m, Action{2});

  EXPECT_EQ(cls.subtable_count(), 2u);
  // Exact rule (inserted first) wins for the exact tuple...
  EXPECT_EQ(cls.lookup(tuple(5))->out_port, 1);
  // ...while a different dst still matches the src-only rule.
  EXPECT_EQ(cls.lookup(tuple(5, 99))->out_port, 2);
}

TEST(TupleSpaceClassifier, GrowsPastInitialCapacity) {
  TupleSpaceClassifier cls;
  FlowMask exact;
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    cls.add_rule(exact, tuple(i), Action{static_cast<std::uint16_t>(i)});
  }
  EXPECT_EQ(cls.rule_count(), 5'000u);
  for (std::uint32_t i = 0; i < 5'000; i += 97) {
    auto hit = cls.lookup(tuple(i));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->out_port, static_cast<std::uint16_t>(i));
  }
}

TEST(TupleSpaceClassifier, UpdateInPlace) {
  TupleSpaceClassifier cls;
  FlowMask exact;
  cls.add_rule(exact, tuple(1), Action{1});
  cls.add_rule(exact, tuple(1), Action{2});
  EXPECT_EQ(cls.rule_count(), 1u);
  EXPECT_EQ(cls.lookup(tuple(1))->out_port, 2);
}

TEST(FlowTable, TwoTierStatistics) {
  FlowTable table(64);
  FlowMask by_src_low;
  by_src_low.src_ip = 0xFF;
  by_src_low.dst_ip = 0;
  by_src_low.src_port = 0;
  by_src_low.dst_port = 0;
  by_src_low.proto = 0;
  for (std::uint32_t b = 0; b < 256; ++b) {
    FiveTuple m;
    m.src_ip = b;
    table.add_rule(by_src_low, m, Action{static_cast<std::uint16_t>(b)});
  }

  // First lookup of a tuple: classifier hit + EMC refill; second: EMC hit.
  const auto t = tuple(0x1234);
  ASSERT_TRUE(table.lookup(t).has_value());
  EXPECT_EQ(table.classifier_hits(), 1u);
  EXPECT_EQ(table.emc_hits(), 0u);
  ASSERT_TRUE(table.lookup(t).has_value());
  EXPECT_EQ(table.emc_hits(), 1u);
  EXPECT_EQ(table.misses(), 0u);
}

}  // namespace
