// Network-wide simulation: topology/routing substrate and the
// routing-obliviousness property of the merged NWHH sample.
#include "netwide/simulation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/random.hpp"
#include "common/zipf.hpp"
#include "qmax/qmax.hpp"

namespace {

using namespace qmax::netwide;
using qmax::QMax;
using qmax::apps::PacketSample;
using qmax::common::Xoshiro256;
using qmax::common::ZipfGenerator;

using R = QMax<PacketSample, double>;

TEST(Topology, LinePaths) {
  const auto t = Topology::line(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.path(0, 4), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(t.path(3, 1), (std::vector<NodeId>{3, 2, 1}));
  EXPECT_EQ(t.path(2, 2), (std::vector<NodeId>{2}));
}

TEST(Topology, StarRoutesThroughHub) {
  const auto t = Topology::star(4);  // hub 0, leaves 1..4
  const auto p = t.path(1, 3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 0u);
}

TEST(Topology, RingTakesShorterArc) {
  const auto t = Topology::ring(6);
  EXPECT_EQ(t.path(0, 5).size(), 2u);  // wrap-around edge
  EXPECT_EQ(t.path(0, 3).size(), 4u);
}

TEST(Topology, DisconnectedIsEmpty) {
  Topology t;
  t.add_node();
  t.add_node();
  EXPECT_TRUE(t.path(0, 1).empty());
  EXPECT_THROW(t.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 9), std::invalid_argument);
}

TEST(Topology, RandomConnectedIsConnected) {
  const auto t = Topology::random_connected(20, 15, 7);
  for (NodeId n = 1; n < 20; ++n) {
    EXPECT_FALSE(t.path(0, n).empty()) << "node " << n << " unreachable";
  }
}

// The central claim (paper §2.6): the merged sample depends only on the
// distinct packet population, not on topology or routing. Send the SAME
// packets over three different topologies/routings and compare the
// controllers' samples packet-for-packet.
TEST(Netwide, RoutingObliviousSampleIsTopologyInvariant) {
  const std::size_t k = 256;
  const std::uint64_t seed = 42;
  auto factory = [&] { return R(k, 0.5); };

  NetwideSimulation<R> on_line(Topology::line(6), k, factory, seed);
  NetwideSimulation<R> on_star(Topology::star(5), k, factory, seed);
  NetwideSimulation<R> on_mesh(Topology::random_connected(6, 8, 3), k,
                               factory, seed);

  Xoshiro256 rng(1);
  ZipfGenerator zipf(2'000, 1.1);
  for (std::uint64_t pid = 0; pid < 50'000; ++pid) {
    const std::uint64_t flow = zipf(rng);
    const NodeId src = rng.bounded(6);
    NodeId dst = rng.bounded(6);
    if (dst == src) dst = (dst + 1) % 6;
    on_line.inject(pid, flow, src, dst);
    on_star.inject(pid, flow, src, dst);
    on_mesh.inject(pid, flow, src, dst);
  }
  // Redundancy differs wildly between topologies...
  EXPECT_NE(on_line.observations(), on_star.observations());
  // ...but the merged samples are identical, packet for packet.
  const auto ctl_line = on_line.collect();
  const auto ctl_star = on_star.collect();
  const auto ctl_mesh = on_mesh.collect();
  ASSERT_EQ(ctl_line.sample().size(), ctl_star.sample().size());
  ASSERT_EQ(ctl_line.sample().size(), ctl_mesh.sample().size());
  for (std::size_t i = 0; i < ctl_line.sample().size(); ++i) {
    EXPECT_EQ(ctl_line.sample()[i].id.packet_id,
              ctl_star.sample()[i].id.packet_id);
    EXPECT_EQ(ctl_line.sample()[i].id.packet_id,
              ctl_mesh.sample()[i].id.packet_id);
  }
}

TEST(Netwide, HeavyHittersFoundAcrossTheFabric) {
  const std::size_t k = 1'024;
  NetwideSimulation<R> sim(Topology::random_connected(10, 10, 5), k,
                           [&] { return R(k, 0.25); });
  Xoshiro256 rng(2);
  const std::uint64_t packets = 100'000;
  for (std::uint64_t pid = 0; pid < packets; ++pid) {
    const std::uint64_t flow =
        rng.uniform() < 0.25 ? 77 : 1'000 + rng.bounded(20'000);
    const NodeId src = rng.bounded(10);
    NodeId dst = rng.bounded(10);
    if (dst == src) dst = (dst + 1) % 10;
    sim.inject(pid, flow, src, dst);
  }
  const auto ctl = sim.collect();
  EXPECT_NEAR(ctl.total_packets(), double(packets), double(packets) * 0.12);
  bool found = false;
  for (const auto& [flow, est] : ctl.heavy_hitters(0.15)) {
    found |= (flow == 77);
  }
  EXPECT_TRUE(found);
}

TEST(Netwide, PartialVisibilityStillCountsOnce) {
  // Tap-style deployment: only two NMPs, each seeing half the packets
  // plus an overlapping quarter. The distinct population is recovered.
  const std::size_t k = 512;
  NetwideSimulation<R> sim(Topology::line(2), k, [&] { return R(k, 0.25); });
  Xoshiro256 rng(3);
  const std::uint64_t packets = 60'000;
  for (std::uint64_t pid = 0; pid < packets; ++pid) {
    const std::uint64_t flow = rng.bounded(100);
    const double u = rng.uniform();
    if (u < 0.5) sim.observe_at(0, pid, flow);
    if (u >= 0.25) sim.observe_at(1, pid, flow);
  }
  const auto ctl = sim.collect();
  EXPECT_NEAR(ctl.total_packets(), double(packets), double(packets) * 0.15);
}

}  // namespace
