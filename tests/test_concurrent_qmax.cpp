// ConcurrentQMax correctness pins.
//
// The load-bearing claim of the lock-free multi-writer pipeline is
// *exactness*: W threads screening against a racy relaxed-atomic Ψ and
// staging through thread-local buffers return the same top q as one
// reservoir fed the whole stream. q-MAX's guarantee is about the top-q
// VALUE multiset (ties at the boundary may resolve to different ids), so
// the differentials bit-compare descending-sorted values against
// seed_reference.hpp goldens, and pin ids too on a tie-free trace where
// the top-q item set is unique. The soak runs under TSan via the sanitize
// CI leg (-R ConcurrentQMax).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "qmax/concurrent.hpp"
#include "qmax/invariants.hpp"
#include "qmax/qmax.hpp"
#include "seed_reference.hpp"

namespace {

using qmax::ConcurrentQMax;
using qmax::QMax;
using EntryT = QMax<>::EntryT;

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Same adversarial mix as the core differential suite: ties, monotone
/// ramps, NaN poison, zeros, negatives, exact-integer noise.
std::vector<double> adversarial_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix64(s);
    switch (r % 16) {
      case 0: v[i] = static_cast<double>(r % 16) * 0.25; break;
      case 1: v[i] = static_cast<double>(i); break;
      case 2: v[i] = std::numeric_limits<double>::quiet_NaN(); break;
      case 3: v[i] = 0.0; break;
      case 4: v[i] = -static_cast<double>(r % 1024); break;
      default: v[i] = static_cast<double>(r % (1ull << 40)); break;
    }
  }
  return v;
}

/// All-distinct values (a shuffled permutation scaled to exact doubles):
/// the top-q *item set* is unique, so ids must match too.
std::vector<double> distinct_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i) * 0.5;
  std::uint64_t s = seed;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(v[i - 1], v[splitmix64(s) % i]);
  }
  return v;
}

std::vector<double> sorted_query_values(const std::vector<EntryT>& out) {
  std::vector<double> v;
  v.reserve(out.size());
  for (const EntryT& e : out) v.push_back(e.val);
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

void expect_same_values(const std::vector<EntryT>& got,
                        const std::vector<EntryT>& want, const char* ctx) {
  const auto g = sorted_query_values(got);
  const auto w = sorted_query_values(want);
  ASSERT_EQ(g.size(), w.size()) << ctx;
  for (std::size_t i = 0; i < g.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(g[i]),
              std::bit_cast<std::uint64_t>(w[i]))
        << ctx << " rank " << i;
  }
}

std::size_t soak_items(std::size_t fallback) {
  if (const char* e = std::getenv("QMAX_SOAK_ITEMS")) {
    const long v = std::atol(e);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

void expect_audit_ok(const qmax::AuditResult& a, const char* ctx) {
  EXPECT_TRUE(a.ok()) << ctx << ": " << a.to_string();
}

// ---------------------------------------------------------------------
// Differentials: multi-writer drain-on-query vs the single-reservoir
// seed golden.
// ---------------------------------------------------------------------

TEST(ConcurrentQMax, MultiWriterMatchesSingleReservoirGolden) {
  for (const std::size_t writers : {1u, 2u, 4u, 8u}) {
    for (const std::size_t q : {1u, 7u, 64u, 100u}) {
      // Small buffers so handoffs, Ψ publishes, and buffer recycling all
      // actually fire at test scale.
      ConcurrentQMax<QMax<>> cq(q, {}, 64);
      seedref::QMax<> ref(q, 0.25);
      const auto vals = adversarial_doubles(40'000, 23 * writers + q);
      for (std::size_t i = 0; i < vals.size(); ++i) ref.add(i, vals[i]);

      // Slice round-robin across writer threads: every thread gets an
      // interleaved (not contiguous) substream, mixed scalar/batch adds.
      std::vector<std::thread> ts;
      ts.reserve(writers);
      std::atomic<int> go{0};
      for (std::size_t wtr = 0; wtr < writers; ++wtr) {
        ts.emplace_back([&, wtr] {
          std::vector<std::uint64_t> ids;
          std::vector<double> slice;
          for (std::size_t i = wtr; i < vals.size(); i += writers) {
            ids.push_back(i);
            slice.push_back(vals[i]);
          }
          go.fetch_add(1, std::memory_order_relaxed);
          while (go.load(std::memory_order_relaxed) <
                 static_cast<int>(writers)) {
          }
          const std::size_t m = ids.size();
          std::size_t i = 0;
          std::uint64_t rng = 91 + wtr;
          while (i < m) {
            const std::size_t run =
                std::min<std::size_t>(1 + splitmix64(rng) % 96, m - i);
            if (run == 1) {
              cq.add(ids[i], slice[i]);
            } else {
              cq.add_batch(ids.data() + i, slice.data() + i, run);
            }
            i += run;
          }
        });
      }
      for (auto& t : ts) t.join();

      expect_same_values(cq.query(), ref.query(), "grid cell");
      EXPECT_EQ(cq.processed(), ref.processed());
      EXPECT_EQ(cq.writer_count(), writers);
      EXPECT_EQ(cq.q(), q);
      expect_audit_ok(qmax::check_invariants(cq), "grid cell post-query");
    }
  }
}

TEST(ConcurrentQMax, MatchesGoldenIdsOnTieFreeTrace) {
  const auto vals = distinct_doubles(30'000, 731);
  ConcurrentQMax<QMax<>> cq(64, {}, 128);
  seedref::QMax<> ref(64, 0.25);
  for (std::size_t i = 0; i < vals.size(); ++i) ref.add(i, vals[i]);

  std::vector<std::thread> ts;
  for (std::size_t wtr = 0; wtr < 4; ++wtr) {
    ts.emplace_back([&, wtr] {
      for (std::size_t i = wtr; i < vals.size(); i += 4) {
        cq.add(i, vals[i]);
      }
    });
  }
  for (auto& t : ts) t.join();

  auto got = cq.query();
  auto want = ref.query();
  const auto by_id = [](const EntryT& a, const EntryT& b) {
    return a.id < b.id;
  };
  std::sort(got.begin(), got.end(), by_id);
  std::sort(want.begin(), want.end(), by_id);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "slot " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].val),
              std::bit_cast<std::uint64_t>(want[i].val))
        << "slot " << i;
  }
}

// ---------------------------------------------------------------------
// Interleaving invariance: deterministic Writer handles on one thread —
// ANY interleaving of writers yields exactly the single-writer multiset.
// ---------------------------------------------------------------------

TEST(ConcurrentQMax, AnyWriterInterleavingMatchesSingleWriter) {
  const std::size_t q = 96;
  const auto vals = adversarial_doubles(25'000, 404);
  seedref::QMax<> ref(q, 0.25);
  for (std::size_t i = 0; i < vals.size(); ++i) ref.add(i, vals[i]);
  const auto want = ref.query();

  // Three schedules over 4 explicit Writer handles: strict round-robin,
  // bursty runs, and a seeded random walk. Same multiset every time.
  for (const std::uint64_t schedule : {0ull, 1ull, 2ull}) {
    ConcurrentQMax<QMax<>> cq(q, {}, 32);
    qmax::ConcurrentQMax<QMax<>>::Writer ws[4] = {
        cq.writer(), cq.writer(), cq.writer(), cq.writer()};
    std::uint64_t rng = 1000 + schedule;
    std::size_t burst_left = 0;
    std::size_t burst_writer = 0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      std::size_t wtr = 0;
      switch (schedule) {
        case 0: wtr = i % 4; break;
        case 1:
          if (burst_left == 0) {
            burst_left = 1 + splitmix64(rng) % 500;
            burst_writer = splitmix64(rng) % 4;
          }
          --burst_left;
          wtr = burst_writer;
          break;
        default: wtr = splitmix64(rng) % 4; break;
      }
      ws[wtr].add(i, vals[i]);
    }
    expect_same_values(cq.query(), want, "schedule");
    EXPECT_EQ(cq.processed(), vals.size());
    expect_audit_ok(qmax::check_invariants(cq), "schedule post-query");
  }
}

TEST(ConcurrentQMax, SpanBatchPathMatchesGolden) {
  // The entry-span path (what forward_concurrent feeds from ring drains).
  const std::size_t q = 128;
  const auto vals = adversarial_doubles(30'000, 55);
  seedref::QMax<> ref(q, 0.25);
  std::vector<EntryT> entries;
  entries.reserve(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ref.add(i, vals[i]);
    entries.push_back(EntryT{i, vals[i]});
  }
  ConcurrentQMax<QMax<>> cq(q, {}, 256);
  auto w0 = cq.writer();
  auto w1 = cq.writer();
  std::uint64_t rng = 77;
  std::size_t pos = 0;
  while (pos < entries.size()) {
    const std::size_t run =
        std::min<std::size_t>(1 + splitmix64(rng) % 300, entries.size() - pos);
    auto span = std::span<const EntryT>(entries.data() + pos, run);
    if (splitmix64(rng) % 2 == 0) {
      w0.add_batch(span);
    } else {
      w1.add_batch(span);
    }
    pos += run;
  }
  expect_same_values(cq.query(), ref.query(), "span batch");
  EXPECT_EQ(cq.processed(), ref.processed());
}

// ---------------------------------------------------------------------
// Accounting, invariants, screen semantics.
// ---------------------------------------------------------------------

TEST(ConcurrentQMax, ConservationAndScreenCounters) {
  ConcurrentQMax<QMax<>> cq(32, {}, 16);
  // Heavy ramp first: Ψ rises, later small items get screened out.
  for (std::size_t i = 0; i < 4'000; ++i) {
    cq.add(i, 1e6 + static_cast<double>(i));
  }
  ASSERT_GT(cq.threshold(), 0.0);
  EXPECT_GT(cq.handoffs(), 0u);
  EXPECT_GT(cq.psi_publishes(), 0u);
  const std::uint64_t screened_before = cq.screened_out();
  std::uint64_t staged = 0;
  for (std::size_t i = 0; i < 4'000; ++i) {
    staged += cq.add(100'000 + i, static_cast<double>(i % 100)) ? 1u : 0u;
  }
  EXPECT_EQ(staged, 0u) << "items below the published bound must screen out";
  EXPECT_EQ(cq.screened_out(), screened_before + 4'000);
  // Conservation with in-flight buffers, before any drain.
  EXPECT_EQ(cq.processed(), cq.screened_out() + cq.buffered());
  EXPECT_LE(cq.in_flight(), cq.buffered());
  expect_audit_ok(qmax::check_invariants(cq), "mid-stream");
  cq.flush();
  EXPECT_EQ(cq.in_flight(), 0u);
  EXPECT_LE(cq.admitted(), cq.buffered());
  // The published screen bound never overtakes the core's exact bound.
  EXPECT_LE(cq.threshold(), cq.core().threshold());
  expect_audit_ok(qmax::check_invariants(cq), "post-flush");
}

TEST(ConcurrentQMax, HandoffRecyclesBuffersAndCountsStalls) {
  // Single writer, tiny buffers: every handoff immediately runs
  // maintenance (no contention), so the spare channel should recycle and
  // stalls should stay at the first-allocation count only.
  ConcurrentQMax<QMax<>> cq(8, {}, 4);
  for (std::size_t i = 0; i < 1'000; ++i) {
    cq.add(i, static_cast<double>(1'000 + i));
  }
  EXPECT_GT(cq.handoffs(), 10u);
  // First handoff stalls once (no spare yet); after that the owner's
  // release beats the writer's next fill in this single-threaded run.
  EXPECT_LE(cq.handoff_stalls(), 1u);
  EXPECT_EQ(cq.maintenance_rounds(), cq.handoffs());
  if (qmax::telemetry::kEnabled) {
    EXPECT_EQ(cq.telem().handoff_batches.value(), cq.handoffs());
  }
}

TEST(ConcurrentQMax, ResetEqualsFresh) {
  const auto warm = adversarial_doubles(9'000, 808);
  const auto probe = adversarial_doubles(9'000, 809);
  ConcurrentQMax<QMax<>> dirty(32, {}, 64);
  ConcurrentQMax<QMax<>> fresh(32, {}, 64);
  for (std::size_t i = 0; i < warm.size(); ++i) dirty.add(i, warm[i]);
  dirty.reset();
  EXPECT_EQ(dirty.processed(), 0u);
  EXPECT_EQ(dirty.buffered(), 0u);
  EXPECT_EQ(dirty.in_flight(), 0u);
  EXPECT_EQ(dirty.live_count(), 0u);
  EXPECT_EQ(dirty.handoffs(), 0u);
  EXPECT_EQ(dirty.psi_publishes(), 0u);
  EXPECT_EQ(dirty.threshold(), qmax::kEmptyValue<double>);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    dirty.add(i, probe[i]);
    fresh.add(i, probe[i]);
  }
  expect_same_values(dirty.query(), fresh.query(), "post-reset");
  EXPECT_EQ(dirty.admitted(), fresh.admitted());
  EXPECT_EQ(dirty.live_count(), fresh.live_count());
}

// ---------------------------------------------------------------------
// Concurrency soak: 8 writers hammering one reservoir, Ψ CAS hot,
// buffer exchange hot. Run under TSan via the sanitize CI leg
// (-R ConcurrentQMax) with QMAX_SOAK_ITEMS scaling the stream.
// ---------------------------------------------------------------------

TEST(ConcurrentQMax, ConcurrentSoakStaysExact) {
  const std::size_t n = soak_items(400'000);
  const std::size_t kWriters = 8;
  const std::size_t q = 256;
  const auto vals = adversarial_doubles(n, 2027);

  ConcurrentQMax<QMax<>> cq(q, {}, 128);
  std::atomic<int> go{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t wtr = 0; wtr < kWriters; ++wtr) {
    writers.emplace_back([&, wtr] {
      // Interleaved slice, pre-gathered so the hot loop is pure ingest.
      std::vector<std::uint64_t> ids;
      std::vector<double> slice;
      std::vector<EntryT> entries;
      for (std::size_t i = wtr; i < n; i += kWriters) {
        ids.push_back(i);
        slice.push_back(vals[i]);
        entries.push_back(EntryT{i, vals[i]});
      }
      go.fetch_add(1, std::memory_order_relaxed);
      while (go.load(std::memory_order_relaxed) <
             static_cast<int>(kWriters)) {
      }
      // Mixed scalar / batch / span adds, like a real consumer fleet.
      const std::size_t m = ids.size();
      std::size_t i = 0;
      std::uint64_t rng = 41 + wtr;
      while (i < m) {
        const std::size_t run =
            std::min<std::size_t>(1 + splitmix64(rng) % 64, m - i);
        switch (splitmix64(rng) % 3) {
          case 0:
            for (std::size_t k = 0; k < run; ++k) {
              cq.add(ids[i + k], slice[i + k]);
            }
            break;
          case 1:
            cq.add_batch(ids.data() + i, slice.data() + i, run);
            break;
          default:
            cq.add_batch(std::span<const EntryT>(entries.data() + i, run));
            break;
        }
        i += run;
      }
    });
  }
  for (auto& t : writers) t.join();

  seedref::QMax<> ref(q, 0.25);
  for (std::size_t i = 0; i < n; ++i) ref.add(i, vals[i]);
  expect_same_values(cq.query(), ref.query(), "concurrent soak");
  EXPECT_EQ(cq.processed(), ref.processed());
  EXPECT_EQ(cq.writer_count(), kWriters);
  expect_audit_ok(qmax::check_invariants(cq), "soak post-query");
}

}  // namespace
