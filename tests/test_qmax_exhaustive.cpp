// Exhaustive small-case verification: EVERY stream of length ≤ 8 over a
// 3-value alphabet, for several (q, γ) configurations and every backend.
// Small-case exhaustion complements the randomized fuzz: it covers every
// possible interleaving of ties, ascents and descents around the
// iteration boundaries, where off-by-one bugs in the parity/eviction
// logic would hide.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/heap_qmax.hpp"
#include "baselines/skiplist_qmax.hpp"
#include "baselines/std_heap_qmax.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/qmax.hpp"

namespace {

constexpr int kAlphabet = 3;
constexpr std::size_t kMaxLen = 8;

std::vector<double> top_q(const std::vector<double>& vals, std::size_t q) {
  std::vector<double> v = vals;
  std::sort(v.begin(), v.end(), std::greater<>());
  if (v.size() > q) v.resize(q);
  return v;
}

template <typename R>
std::vector<double> run(R&& r, const std::vector<double>& vals) {
  for (std::size_t i = 0; i < vals.size(); ++i) {
    r.add(static_cast<std::uint64_t>(i), vals[i]);
  }
  std::vector<double> out;
  for (const auto& e : r.query()) out.push_back(e.val);
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

// Enumerate all kAlphabet^len streams for every len ≤ kMaxLen via an
// odometer, verifying every backend at every configuration.
template <typename MakeR>
void exhaust(MakeR&& make, std::size_t q) {
  std::vector<int> digits;
  for (std::size_t len = 1; len <= kMaxLen; ++len) {
    digits.assign(len, 0);
    for (;;) {
      std::vector<double> vals(len);
      for (std::size_t i = 0; i < len; ++i) {
        vals[i] = static_cast<double>(digits[i]);
      }
      const auto got = run(make(), vals);
      const auto expect = top_q(vals, q);
      ASSERT_EQ(got, expect) << "len=" << len;

      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < len && ++digits[pos] == kAlphabet) {
        digits[pos++] = 0;
      }
      if (pos == len) break;
    }
  }
}

TEST(QMaxExhaustive, DeamortizedTinyGamma) {
  for (std::size_t q : {1ul, 2ul, 3ul}) {
    exhaust([q] { return qmax::QMax<>(q, 0.01); }, q);
  }
}

TEST(QMaxExhaustive, DeamortizedLargeGamma) {
  for (std::size_t q : {1ul, 2ul, 3ul}) {
    exhaust([q] { return qmax::QMax<>(q, 2.0); }, q);
  }
}

TEST(QMaxExhaustive, Amortized) {
  for (std::size_t q : {1ul, 2ul, 3ul}) {
    exhaust([q] { return qmax::AmortizedQMax<>(q, 0.5); }, q);
  }
}

TEST(QMaxExhaustive, Heap) {
  for (std::size_t q : {1ul, 2ul, 3ul}) {
    exhaust([q] { return qmax::baselines::HeapQMax<>(q); }, q);
  }
}

TEST(QMaxExhaustive, StdHeap) {
  for (std::size_t q : {1ul, 2ul, 3ul}) {
    exhaust([q] { return qmax::baselines::StdHeapQMax<>(q); }, q);
  }
}

TEST(QMaxExhaustive, SkipList) {
  for (std::size_t q : {1ul, 2ul, 3ul}) {
    exhaust([q] { return qmax::baselines::SkipListQMax<>(q); }, q);
  }
}

}  // namespace
