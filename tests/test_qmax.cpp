// Unit tests for the deamortized q-MAX reservoir (Algorithm 1) and the
// amortized variant.
#include "qmax/qmax.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/random.hpp"
#include "qmax/amortized_qmax.hpp"
#include "qmax/qmin.hpp"

namespace {

using qmax::AmortizedQMax;
using qmax::Entry;
using qmax::QMax;
using qmax::QMin;
using qmax::common::Xoshiro256;

std::vector<double> top_q_oracle(std::vector<double> vals, std::size_t q) {
  std::sort(vals.begin(), vals.end(), std::greater<>());
  if (vals.size() > q) vals.resize(q);
  return vals;
}

template <typename R>
std::vector<double> queried_values(const R& r) {
  std::vector<double> out;
  for (const auto& e : r.query()) out.push_back(e.val);
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

TEST(QMax, RejectsInvalidParameters) {
  EXPECT_THROW(QMax<>(0, 0.25), std::invalid_argument);
  EXPECT_THROW(QMax<>(10, 0.0), std::invalid_argument);
  EXPECT_THROW(QMax<>(10, -1.0), std::invalid_argument);
}

TEST(QMax, CapacityMatchesTheorem1) {
  // Space is q + 2g = q(1 + γ) up to rounding of g = ⌈qγ/2⌉.
  QMax<> r(1000, 0.5);
  EXPECT_EQ(r.capacity(), 1000 + 2 * 250);
  QMax<> tiny(10, 0.01);  // g clamps to 1
  EXPECT_EQ(tiny.capacity(), 12);
}

TEST(QMax, ShortStreamReturnsEverything) {
  QMax<> r(100, 0.25);
  for (int i = 0; i < 7; ++i) r.add(i, i * 1.5);
  auto vals = queried_values(r);
  EXPECT_EQ(vals.size(), 7u);
  EXPECT_DOUBLE_EQ(vals.front(), 9.0);
  EXPECT_DOUBLE_EQ(vals.back(), 0.0);
}

TEST(QMax, ExactTopQOnRandomStream) {
  const std::size_t q = 64;
  QMax<> r(q, 0.25);
  Xoshiro256 rng(42);
  std::vector<double> all;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.uniform() * 1e6;
    all.push_back(v);
    r.add(static_cast<std::uint64_t>(i), v);
  }
  EXPECT_EQ(queried_values(r), top_q_oracle(all, q));
}

TEST(QMax, ExactTopQOnAscendingStream) {
  // Ascending values: every single item is admitted (worst-case update
  // pattern — the selection machinery runs continuously).
  const std::size_t q = 50;
  QMax<> r(q, 0.1);
  std::vector<double> all;
  for (int i = 0; i < 10'000; ++i) {
    all.push_back(i);
    r.add(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  EXPECT_EQ(queried_values(r), top_q_oracle(all, q));
}

TEST(QMax, ExactTopQOnDescendingStream) {
  // Descending values: after the warmup, nothing beats Ψ.
  const std::size_t q = 50;
  QMax<> r(q, 0.1);
  std::vector<double> all;
  for (int i = 10'000; i > 0; --i) {
    all.push_back(i);
    r.add(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  EXPECT_EQ(queried_values(r), top_q_oracle(all, q));
}

TEST(QMax, ConstantStream) {
  const std::size_t q = 32;
  QMax<> r(q, 0.5);
  for (int i = 0; i < 5'000; ++i) r.add(i, 3.25);
  auto vals = queried_values(r);
  EXPECT_EQ(vals.size(), q);
  for (double v : vals) EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(QMax, SawtoothStream) {
  const std::size_t q = 77;
  QMax<> r(q, 0.3);
  std::vector<double> all;
  for (int i = 0; i < 30'000; ++i) {
    const double v = static_cast<double>(i % 997);
    all.push_back(v);
    r.add(static_cast<std::uint64_t>(i), v);
  }
  EXPECT_EQ(queried_values(r), top_q_oracle(all, q));
}

TEST(QMax, ThresholdIsMonotoneAndSound) {
  const std::size_t q = 128;
  QMax<> r(q, 0.25);
  Xoshiro256 rng(1);
  std::vector<double> all;
  double last_psi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.uniform();
    all.push_back(v);
    r.add(static_cast<std::uint64_t>(i), v);
    const double psi = r.threshold();
    EXPECT_GE(psi, last_psi) << "threshold must be monotone";
    last_psi = psi;
  }
  // Ψ never exceeds the true q-th largest (otherwise top-q items could be
  // rejected at the door).
  auto oracle = top_q_oracle(all, q);
  EXPECT_LE(r.threshold(), oracle.back());
}

TEST(QMax, ReturnedIdsComeFromTheStream) {
  const std::size_t q = 40;
  QMax<> r(q, 0.2);
  Xoshiro256 rng(9);
  std::map<std::uint64_t, double> stream;
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    const double v = rng.uniform() * 100;
    stream[i] = v;
    r.add(i, v);
  }
  for (const auto& e : r.query()) {
    auto it = stream.find(e.id);
    ASSERT_NE(it, stream.end());
    EXPECT_DOUBLE_EQ(it->second, e.val);
  }
}

TEST(QMax, EvictionConservation) {
  // Every admitted item is either still live or was reported evicted
  // exactly once — the side-table contract PBA and LRFU rely on.
  const std::size_t q = 64;
  QMax<> r(q, 0.5);
  std::uint64_t evicted = 0;
  r.set_evict_callback([&](const Entry&) { ++evicted; });
  Xoshiro256 rng(5);
  std::uint64_t admitted = 0;
  for (int i = 0; i < 30'000; ++i) {
    if (r.add(static_cast<std::uint64_t>(i), rng.uniform())) ++admitted;
  }
  EXPECT_EQ(admitted, r.admitted());
  EXPECT_EQ(admitted, evicted + r.live_count());
}

TEST(QMax, ResetRestoresFreshState) {
  QMax<> r(16, 0.25);
  Xoshiro256 rng(2);
  for (int i = 0; i < 1'000; ++i) r.add(i, rng.uniform());
  r.reset();
  EXPECT_EQ(r.live_count(), 0u);
  EXPECT_EQ(r.processed(), 0u);
  EXPECT_EQ(r.threshold(), qmax::kEmptyValue<double>);
  std::vector<double> all;
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.uniform();
    all.push_back(v);
    r.add(static_cast<std::uint64_t>(i), v);
  }
  EXPECT_EQ(queried_values(r), top_q_oracle(all, 16));
}

TEST(QMax, ResetClearsLateSelections) {
  // budget_factor = 0 gives the selection no per-step allowance, so every
  // iteration ends with the synchronous safety net — a guaranteed way to
  // accumulate late_selections, which reset() must clear along with the
  // rest of the state.
  QMax<> r(64, QMax<>::Options{.gamma = 0.5, .budget_factor = 0});
  for (int i = 0; i < 10'000; ++i) {
    r.add(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  ASSERT_GT(r.late_selections(), 0u);
  r.reset();
  EXPECT_EQ(r.late_selections(), 0u);
  EXPECT_EQ(r.admitted(), 0u);
}

TEST(QMax, RejectsNaN) {
  QMax<> r(4, 0.25);
  EXPECT_FALSE(r.add(1, std::numeric_limits<double>::quiet_NaN()));
  r.add(2, 1.0);
  EXPECT_EQ(r.query().size(), 1u);
}

TEST(QMax, AcceptsInfinities) {
  QMax<> r(3, 0.5);
  r.add(1, std::numeric_limits<double>::infinity());
  r.add(2, -1e308);
  r.add(3, 0.0);
  auto vals = queried_values(r);
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_TRUE(std::isinf(vals.front()));
}

TEST(QMax, QOneTinyGamma) {
  QMax<> r(1, 0.001);
  Xoshiro256 rng(77);
  double best = -1;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform();
    best = std::max(best, v);
    r.add(static_cast<std::uint64_t>(i), v);
  }
  auto res = r.query();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_DOUBLE_EQ(res[0].val, best);
}

TEST(QMax, DeamortizedSelectionFinishesOnTime) {
  // The per-step budget must complete the selection within each iteration
  // on benign streams; late_selections() counts the safety-net firings.
  QMax<> r(10'000, 0.05);
  Xoshiro256 rng(123);
  for (int i = 0; i < 500'000; ++i) {
    r.add(static_cast<std::uint64_t>(i), rng.uniform());
  }
  EXPECT_EQ(r.late_selections(), 0u);
}

TEST(QMax, LargeGammaLargerThanOne) {
  const std::size_t q = 25;
  QMax<> r(q, 2.0);  // γ = 200%, the paper's largest setting
  Xoshiro256 rng(4);
  std::vector<double> all;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform();
    all.push_back(v);
    r.add(static_cast<std::uint64_t>(i), v);
  }
  EXPECT_EQ(queried_values(r), top_q_oracle(all, q));
}

TEST(AmortizedQMax, MatchesOracle) {
  const std::size_t q = 100;
  AmortizedQMax<> r(q, 0.25);
  Xoshiro256 rng(8);
  std::vector<double> all;
  for (int i = 0; i < 25'000; ++i) {
    const double v = rng.uniform();
    all.push_back(v);
    r.add(static_cast<std::uint64_t>(i), v);
  }
  EXPECT_EQ(queried_values(r), top_q_oracle(all, q));
}

TEST(AmortizedQMax, AgreesWithDeamortized) {
  const std::size_t q = 33;
  AmortizedQMax<> a(q, 0.4);
  QMax<> d(q, 0.4);
  Xoshiro256 rng(15);
  for (int i = 0; i < 40'000; ++i) {
    const double v = std::floor(rng.uniform() * 5000.0);
    a.add(static_cast<std::uint64_t>(i), v);
    d.add(static_cast<std::uint64_t>(i), v);
  }
  EXPECT_EQ(queried_values(a), queried_values(d));
}

TEST(QMin, TracksSmallest) {
  QMin<QMax<>> r(64, 0.25);
  Xoshiro256 rng(21);
  std::vector<double> all;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.uniform();
    all.push_back(v);
    r.add(static_cast<std::uint64_t>(i), v);
  }
  std::sort(all.begin(), all.end());
  all.resize(64);
  std::vector<double> got;
  for (const auto& e : r.query()) got.push_back(e.val);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, all);
}

TEST(QMin, ThresholdBoundsAdmission) {
  QMin<QMax<>> r(8, 0.5);
  for (int i = 0; i < 1'000; ++i) {
    r.add(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  // After 1000 ascending values the 8 smallest are 0..7; the admission
  // bound must be sound (no smaller than the true 8th smallest).
  EXPECT_LE(r.threshold(), 1000.0);
  auto vals = r.query();
  ASSERT_EQ(vals.size(), 8u);
  for (const auto& e : vals) EXPECT_LT(e.val, 8.0);
}

}  // namespace
