// DBM tests: bucket invariants, bandwidth reconstruction, and agreement
// between the heap and q-MIN pair finders.
#include "apps/dbm.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace {

using qmax::apps::DbmSketch;
using qmax::apps::HeapPairFinder;
using qmax::apps::QMinPairFinder;
using qmax::common::Xoshiro256;

TEST(Dbm, RejectsTinyBudget) {
  EXPECT_THROW(DbmSketch<HeapPairFinder>(1), std::invalid_argument);
}

TEST(Dbm, BucketCountNeverExceedsBudget) {
  DbmSketch<HeapPairFinder> dbm(16);
  Xoshiro256 rng(1);
  for (std::uint64_t t = 0; t < 10'000; ++t) {
    dbm.add(t, 1 + rng.bounded(1'000));
    EXPECT_LE(dbm.bucket_count(), 16u);
  }
}

TEST(Dbm, BytesAreConserved) {
  DbmSketch<HeapPairFinder> dbm(8);
  std::uint64_t total = 0;
  Xoshiro256 rng(2);
  for (std::uint64_t t = 0; t < 5'000; ++t) {
    const std::uint64_t b = 1 + rng.bounded(100);
    total += b;
    dbm.add(t, b);
  }
  EXPECT_EQ(dbm.total_bytes(), total);
  double sum = 0;
  for (const auto& b : dbm.buckets()) sum += double(b.bytes);
  EXPECT_DOUBLE_EQ(sum, double(total));
}

TEST(Dbm, BucketsTileTimeInOrder) {
  DbmSketch<HeapPairFinder> dbm(12);
  for (std::uint64_t t = 0; t < 3'000; ++t) dbm.add(t, 10);
  const auto buckets = dbm.buckets();
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.front().start_ts, 0u);
  EXPECT_EQ(buckets.back().end_ts, 2'999u);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].start_ts, buckets[i - 1].end_ts + 1)
        << "gap/overlap between buckets " << i - 1 << " and " << i;
  }
}

TEST(Dbm, FullRangeBandwidthIsTotal) {
  DbmSketch<HeapPairFinder> dbm(10);
  std::uint64_t total = 0;
  Xoshiro256 rng(3);
  for (std::uint64_t t = 0; t < 2'000; ++t) {
    const std::uint64_t b = 1 + rng.bounded(50);
    total += b;
    dbm.add(t, b);
  }
  EXPECT_NEAR(dbm.bandwidth(0, 1'999), double(total), 1e-6);
}

TEST(Dbm, DetectsTrafficBurst) {
  // Uniform 10 B/s with a 1000 B/s burst in [500, 600): DBM with enough
  // buckets must attribute most bytes to the burst interval.
  DbmSketch<HeapPairFinder> dbm(32);
  for (std::uint64_t t = 0; t < 1'000; ++t) {
    dbm.add(t, (t >= 500 && t < 600) ? 1'000 : 10);
  }
  const double burst = dbm.bandwidth(500, 599);
  const double quiet = dbm.bandwidth(0, 99);
  EXPECT_GT(burst, 50'000.0);
  EXPECT_LT(quiet, 20'000.0);
}

TEST(Dbm, QMinFinderKeepsInvariants) {
  DbmSketch<QMinPairFinder> dbm(16, QMinPairFinder(16, 1.0));
  std::uint64_t total = 0;
  Xoshiro256 rng(4);
  for (std::uint64_t t = 0; t < 20'000; ++t) {
    const std::uint64_t b = 1 + rng.bounded(1'000);
    total += b;
    dbm.add(t, b);
    ASSERT_LE(dbm.bucket_count(), 16u);
  }
  EXPECT_EQ(dbm.total_bytes(), total);
  const auto buckets = dbm.buckets();
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].start_ts, buckets[i - 1].end_ts + 1);
  }
}

TEST(Dbm, FindersGiveComparableAccuracy) {
  // The lazy q-MIN finder may merge slightly off-minimum pairs; its
  // bandwidth reconstruction must stay close to the heap version's.
  DbmSketch<HeapPairFinder> heap_dbm(24);
  DbmSketch<QMinPairFinder> qmin_dbm(24, QMinPairFinder(24, 1.0));
  Xoshiro256 rng(5);
  for (std::uint64_t t = 0; t < 5'000; ++t) {
    const std::uint64_t b = (t / 500) % 2 == 0 ? 10 + rng.bounded(10)
                                               : 200 + rng.bounded(100);
    heap_dbm.add(t, b);
    qmin_dbm.add(t, b);
  }
  for (std::uint64_t lo = 0; lo < 5'000; lo += 1'000) {
    const double a = heap_dbm.bandwidth(lo, lo + 999);
    const double b = qmin_dbm.bandwidth(lo, lo + 999);
    EXPECT_NEAR(a, b, std::max(a, b) * 0.35 + 1'000.0);
  }
}

}  // namespace
